package faultx

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseProfileEmptyAndOff(t *testing.T) {
	for _, in := range []string{"", "  ", "off", " off "} {
		plan, err := ParseProfile(in)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", in, err)
		}
		if plan != nil {
			t.Fatalf("ParseProfile(%q) = %v, want nil plan", in, plan)
		}
		if NewInjector(plan) != nil {
			t.Fatalf("NewInjector(nil) must be nil")
		}
	}
}

func TestParseProfileGrammar(t *testing.T) {
	plan, err := ParseProfile(
		"seed=7; failures=1; retry-after=2ms; ratelimit=a.com,b.com;" +
			"failures=3; flaky=c.com; stall=5ms; slow=d.com;" +
			"reset=e.com; down=f.com; rot=0.25; rot=0.5@g.com")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 {
		t.Fatalf("seed = %d, want 7", plan.Seed)
	}
	if plan.Rot != 0.25 {
		t.Fatalf("global rot = %g, want 0.25", plan.Rot)
	}
	want := map[string]HostFault{
		"a.com": {Failures: 1, Status: 429, RetryAfter: 2 * time.Millisecond},
		"b.com": {Failures: 1, Status: 429, RetryAfter: 2 * time.Millisecond},
		"c.com": {Failures: 3, Status: 500},
		"d.com": {Failures: 3, Stall: 5 * time.Millisecond},
		"e.com": {Failures: 3, Reset: true, Stall: 5 * time.Millisecond},
		"f.com": {Down: true},
		"g.com": {RotRate: 0.5},
	}
	if len(plan.Hosts) != len(want) {
		t.Fatalf("hosts = %v, want %d entries", plan.Hosts, len(want))
	}
	for h, hf := range want {
		if got := plan.Hosts[h]; got != hf {
			t.Errorf("host %s = %+v, want %+v", h, got, hf)
		}
	}
}

func TestParseProfileDefaults(t *testing.T) {
	plan, err := ParseProfile("ratelimit=*")
	if err != nil {
		t.Fatal(err)
	}
	hf := plan.Hosts["*"]
	if plan.Seed != 2019 || hf.Failures != 2 || hf.RetryAfter != time.Millisecond {
		t.Fatalf("defaults wrong: seed=%d fault=%+v", plan.Seed, hf)
	}
	// A slow clause with no stall scalar set defaults to 1ms, so the
	// fault is actually scheduled rather than silently inert.
	plan, err = ParseProfile("slow=a.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Hosts["a.com"].Stall; got != time.Millisecond {
		t.Fatalf("bare slow stall = %v, want 1ms", got)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, in := range []string{
		"nonsense",
		"bogus=1",
		"seed=abc",
		"failures=-1",
		"failures=x",
		"retry-after=fast",
		"retry-after=-1s",
		"stall=later",
		"rot=2",
		"rot=-0.1",
		"rot=high@a.com",
	} {
		if _, err := ParseProfile(in); err == nil {
			t.Errorf("ParseProfile(%q) accepted, want error", in)
		}
	}
}

func TestDecideScheduledCounter(t *testing.T) {
	plan, err := ParseProfile("failures=2;ratelimit=a.com")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan)
	for i := 0; i < 2; i++ {
		d := inj.Decide("a.com", "/x")
		if d.Status != 429 || d.RetryAfter != time.Millisecond {
			t.Fatalf("request %d: %+v, want 429 + hint", i, d)
		}
	}
	if d := inj.Decide("a.com", "/x"); d.Fault() {
		t.Fatalf("request 3 for same URL still faulted: %+v", d)
	}
	// A different URL on the same host has its own counter.
	if d := inj.Decide("a.com", "/y"); d.Status != 429 {
		t.Fatalf("fresh URL not faulted: %+v", d)
	}
	// An unlisted host passes through (no wildcard in this plan).
	if d := inj.Decide("b.com", "/x"); d.Fault() {
		t.Fatalf("unlisted host faulted: %+v", d)
	}
}

func TestDecideDownAndPrecedence(t *testing.T) {
	plan, err := ParseProfile("down=a.com;rot=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan)
	// Down beats rot: every request is a 500, forever.
	for i := 0; i < 5; i++ {
		if d := inj.Decide("a.com", "/x"); d.Status != 500 {
			t.Fatalf("down host request %d: %+v, want 500", i, d)
		}
	}
	// Other hosts see rot=1 → every URL is rotten.
	if d := inj.Decide("b.com", "/x"); d.Status != 404 {
		t.Fatalf("rot=1 host: %+v, want 404", d)
	}
}

func TestRotDeterministicAndSeeded(t *testing.T) {
	plan, _ := ParseProfile("rot=0.5")
	a, b := NewInjector(plan), NewInjector(plan)
	rotten, healthy := 0, 0
	for _, u := range []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h", "/i", "/j"} {
		da, db := a.Decide("h.com", u), b.Decide("h.com", u)
		if da != db {
			t.Fatalf("rot verdict for %s differs across injectors: %+v vs %+v", u, da, db)
		}
		// Repeat calls are stable too (permanent rot, no counter).
		if again := a.Decide("h.com", u); again != da {
			t.Fatalf("rot verdict for %s drifted on repeat: %+v vs %+v", u, again, da)
		}
		if da.Status == 404 {
			rotten++
		} else {
			healthy++
		}
	}
	if rotten == 0 || healthy == 0 {
		t.Fatalf("rot=0.5 over 10 URLs gave %d rotten / %d healthy — hash degenerate", rotten, healthy)
	}
	// A different seed rots a different subset.
	other, _ := ParseProfile("seed=1;rot=0.5")
	oi := NewInjector(other)
	same := true
	for _, u := range []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h", "/i", "/j"} {
		if oi.Decide("h.com", u) != a.Decide("h.com", u) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not move the rotten subset")
	}
}

func TestRetryAfterRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 250 * time.Millisecond, 2 * time.Second} {
		if got := ParseRetryAfter(FormatRetryAfter(d)); got != d {
			t.Errorf("round-trip %v → %q → %v", d, FormatRetryAfter(d), got)
		}
	}
	for _, v := range []string{"", "soon", "-1", "0", "Mon, 02 Jan 2006 15:04:05 GMT"} {
		if got := ParseRetryAfter(v); got != 0 {
			t.Errorf("ParseRetryAfter(%q) = %v, want 0", v, got)
		}
	}
	// Integer seconds — what studysvc emits — parse too.
	if got := ParseRetryAfter("2"); got != 2*time.Second {
		t.Errorf("ParseRetryAfter(2) = %v", got)
	}
}

func TestTransportSeam(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "real")
	}))
	defer srv.Close()

	plan, _ := ParseProfile("failures=2;ratelimit=imgur.com")
	client := srv.Client()
	client.Transport = Transport(client.Transport, NewInjector(plan), nil)

	for i := 0; i < 2; i++ {
		resp, err := client.Get(srv.URL + "/imgur.com/img1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 429 {
			t.Fatalf("request %d: status %d, want 429", i, resp.StatusCode)
		}
		if hint := ParseRetryAfter(resp.Header.Get("Retry-After")); hint != time.Millisecond {
			t.Fatalf("request %d: Retry-After %q", i, resp.Header.Get("Retry-After"))
		}
		if hits != 0 {
			t.Fatalf("faulted request reached the real handler")
		}
	}
	resp, err := client.Get(srv.URL + "/imgur.com/img1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "real" || hits != 1 {
		t.Fatalf("post-schedule request: status %d body %q hits %d", resp.StatusCode, body, hits)
	}
	// Other sites under the same server are untouched.
	resp, err = client.Get(srv.URL + "/oron.com/f1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hits != 2 {
		t.Fatalf("unlisted site: status %d hits %d", resp.StatusCode, hits)
	}
}

func TestTransportReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	plan, _ := ParseProfile("failures=1;reset=imgur.com")
	client := srv.Client()
	client.Transport = Transport(client.Transport, NewInjector(plan), nil)
	_, err := client.Get(srv.URL + "/imgur.com/x")
	if err == nil || !strings.Contains(err.Error(), "connection reset by imgur.com") {
		t.Fatalf("reset fault error = %v, want ResetError", err)
	}
	resp, err := client.Get(srv.URL + "/imgur.com/x")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-reset request: %v / %v", resp, err)
	}
	resp.Body.Close()
}

func TestTransportStallHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	plan, _ := ParseProfile("failures=1;stall=10s;slow=imgur.com")
	client := srv.Client()
	client.Transport = Transport(client.Transport, NewInjector(plan), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/imgur.com/x", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("stalled request succeeded before its 10s stall")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored context cancellation (took %v)", elapsed)
	}
}

func TestMiddlewareSeam(t *testing.T) {
	hits := 0
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "real")
	})
	plan, _ := ParseProfile("failures=1;ratelimit=imgur.com;reset=oron.com")
	inj := NewInjector(plan)
	srv := httptest.NewServer(Middleware(inj, nil)(next))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/imgur.com/img1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 || ParseRetryAfter(resp.Header.Get("Retry-After")) != time.Millisecond {
		t.Fatalf("middleware fault: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(srv.URL + "/imgur.com/img1")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-schedule: %v / %v", resp, err)
	}
	resp.Body.Close()

	// Reset faults abort the connection: the client sees a transport
	// error, not a status — matching the Transport seam.
	if _, err := http.Get(srv.URL + "/oron.com/f1"); err == nil {
		t.Fatal("reset fault answered instead of aborting")
	}
	if _, err := http.Get(srv.URL + "/oron.com/f1"); err != nil {
		t.Fatalf("post-reset request failed: %v", err)
	}
	if hits != 2 {
		t.Fatalf("real handler saw %d requests, want 2", hits)
	}
}

func TestMiddlewareNilInjectorIsIdentity(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Middleware(nil, nil)(next); got == nil {
		t.Fatal("nil-injector middleware returned nil handler")
	}
	if Transport(nil, nil, nil) != nil {
		t.Fatal("Transport with nil injector must return base unchanged (nil)")
	}
}

func TestHostFuncs(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/imgur.com/im/abc.jpg", nil)
	if got := PathHost(req); got != "imgur.com" {
		t.Fatalf("PathHost = %q", got)
	}
	req = httptest.NewRequest(http.MethodGet, "/landing", nil)
	if got := PathHost(req); got != "landing" {
		t.Fatalf("PathHost bare segment = %q", got)
	}
	if got := FixedHost("reverse")(req); got != "reverse" {
		t.Fatalf("FixedHost = %q", got)
	}
}

func TestPlanString(t *testing.T) {
	plan, _ := ParseProfile("rot=0.3;down=oron.com,zippyshare.com;failures=2;ratelimit=imgur.com")
	got := plan.String()
	want := `seed=2019 rot=0.3 imgur.com{429×2} oron.com{down} zippyshare.com{down}`
	if got != want {
		t.Fatalf("Plan.String() = %q, want %q", got, want)
	}
	if (*Plan)(nil).String() != "off" {
		t.Fatal("nil plan String() != off")
	}
}
