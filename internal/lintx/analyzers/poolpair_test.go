package analyzers

import (
	"testing"

	"repro/internal/lintx/lintest"
)

// The fixture covers both clean pairings (defer, same-block direct
// Put), every leak class (no Put, early return, conditional Put,
// use-after-put, escape via return/store/composite literal) and the
// directive-based ownership-transfer escape hatch.
func TestPoolPair(t *testing.T) {
	lintest.Run(t, "testdata", PoolPair, "poolfix")
}
