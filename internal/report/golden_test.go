package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestFullReportGolden pins report.Full byte-for-byte for a fixed
// seed/scale: table layout, column widths, number formatting and row
// order are all part of the study's contract (DESIGN.md §1 —
// determinism is an invariant), so any formatting or data drift fails
// here. Regenerate deliberately with:
//
//	go test ./internal/report -run TestFullReportGolden -update
func TestFullReportGolden(t *testing.T) {
	got := Full(res(t))
	golden := filepath.Join("testdata", "full_seed77_scale002.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("report drifted from golden at line %d:\n  got:  %q\n  want: %q\n(rerun with -update if the change is intended)",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("report drifted from golden: got %d lines, want %d (rerun with -update if intended)",
		len(gotLines), len(wantLines))
}
