package report

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/synth"
)

var (
	once    sync.Once
	results *core.Results
	runErr  error
)

func res(t testing.TB) *core.Results {
	once.Do(func() {
		s := core.NewStudy(core.Options{
			Synth:          synth.Config{Seed: 77, Scale: 0.02},
			AnnotationSize: 300,
		})
		results, runErr = s.Run(context.Background())
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return results
}

func TestFullReportContainsEverything(t *testing.T) {
	out := Full(res(t))
	wants := []string{
		"Table 1", "Classifier (§4.1)", "Table 3", "Table 4",
		"Crawl (§4.2)", "PhotoDNA filter (§4.3)", "NSFV classification (§4.4)",
		"Table 5", "Table 6", "Earnings (§5)", "Figure 2", "Figure 3",
		"Table 7", "Table 8", "Figure 4", "Table 9", "Table 10", "Figure 5",
		"Hackforums", "imgur.com", "mediafire.com",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("full report missing %q", w)
		}
	}
	if len(out) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestTable1Totals(t *testing.T) {
	out := Table1(res(t).Table1)
	if !strings.Contains(out, "TOTAL") {
		t.Fatal("no totals row")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 12 {
		t.Fatalf("Table 1 has %d lines, want >= 12 (10 forums + header + total)", len(lines))
	}
}

func TestTable9Triangle(t *testing.T) {
	out := Table9(res(t).Actors.Table9)
	if !strings.Contains(out, "-") {
		t.Fatal("lower triangle not dashed")
	}
}

func TestFigure3ChronologicalMonths(t *testing.T) {
	out := Figure3(res(t).Earnings)
	if !strings.Contains(out, "AGC") || !strings.Contains(out, "PayPal") {
		t.Fatalf("Figure 3 header missing: %q", out[:80])
	}
}

func TestEmptyFigure3(t *testing.T) {
	var e core.EarningsResult
	e.MonthlyAGC = stats.NewMonthlySeries()
	e.MonthlyPayPal = stats.NewMonthlySeries()
	out := Figure3(e)
	if !strings.Contains(out, "no proof series") {
		t.Fatalf("empty Figure 3 = %q", out)
	}
}
