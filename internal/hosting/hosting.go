// Package hosting simulates the third-party web substrate the paper
// crawls: image-sharing sites (imgur, Gyazo, ...) serving single
// preview/proof images, and cloud-storage services (MediaFire, mega,
// ...) serving zipped packs. Sites exhibit the failure modes the paper
// documents — deleted files, Terms-of-Service takedowns that replace
// an image with an error banner, registration walls the crawler must
// not cross, and wholesale site shutdowns (oron) — all over real HTTP.
//
// All sites of a World are served by one net/http handler that routes
// on the first path segment (the virtual domain), e.g.
// "/imgur.com/aB3dE". World.Resolver rewrites in-forum URLs such as
// "https://imgur.com/aB3dE" onto a live server's base URL, playing the
// role DNS plays for the real crawler.
package hosting

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/imagex"
	"repro/internal/urlx"
)

// Content types served by the simulated sites.
const (
	ContentTypeSIMG = "image/x-simg"
	ContentTypeZip  = "application/zip"
	ContentTypeHTML = "text/html; charset=utf-8"
)

// ObjectStatus describes what has become of an uploaded object.
type ObjectStatus int

// Object lifecycle states.
const (
	// StatusLive serves the original payload.
	StatusLive ObjectStatus = iota
	// StatusDeleted returns 404 (expired free-account links, user
	// deletions).
	StatusDeleted
	// StatusTakedown returns a 200 error-banner image on image-sharing
	// sites ("This image violates our Terms of Use and has been
	// removed from view") and 410 on cloud storage.
	StatusTakedown
)

// Object is one hosted payload.
type Object struct {
	Data        []byte
	ContentType string
	Status      ObjectStatus
}

// SiteConfig describes a simulated hosting site.
type SiteConfig struct {
	Domain string
	Kind   urlx.Kind
	// RequiresLogin gates all downloads behind an account (Dropbox,
	// Google Drive); the crawler must respect the wall.
	RequiresLogin bool
	// Defunct shuts the whole site down (oron): every request returns
	// 503.
	Defunct bool
}

// Site is one simulated hosting service. Safe for concurrent use.
type Site struct {
	cfg     SiteConfig
	mu      sync.RWMutex
	objects map[string]*Object
}

// Config returns the site's configuration.
func (s *Site) Config() SiteConfig { return s.cfg }

// Put stores an object at a path (without leading slash).
func (s *Site) Put(path string, obj Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[strings.TrimPrefix(path, "/")] = &obj
}

// PutImage stores a live SIMG image.
func (s *Site) PutImage(path string, im *imagex.Image) {
	s.Put(path, Object{Data: im.Encode(), ContentType: ContentTypeSIMG})
}

// PutPack stores a live zip pack.
func (s *Site) PutPack(path string, images []*imagex.Image) error {
	data, err := imagex.EncodePackZip(images)
	if err != nil {
		return err
	}
	s.Put(path, Object{Data: data, ContentType: ContentTypeZip})
	return nil
}

// SetStatus changes the lifecycle state of an object; it reports
// whether the object exists.
func (s *Site) SetStatus(path string, st ObjectStatus) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[strings.TrimPrefix(path, "/")]
	if !ok {
		return false
	}
	obj.Status = st
	return true
}

// NumObjects returns the number of hosted objects.
func (s *Site) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// serve handles a request for path (already stripped of the domain
// segment).
func (s *Site) serve(w http.ResponseWriter, r *http.Request, path string) {
	if s.cfg.Defunct {
		http.Error(w, "service discontinued", http.StatusServiceUnavailable)
		return
	}
	if path == "" || path == "landing" {
		s.serveLanding(w)
		return
	}
	if s.cfg.RequiresLogin {
		w.Header().Set("Content-Type", ContentTypeHTML)
		w.WriteHeader(http.StatusUnauthorized)
		fmt.Fprintf(w, "<html><body>Sign in to %s to continue</body></html>", s.cfg.Domain)
		return
	}
	s.mu.RLock()
	obj, ok := s.objects[path]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch obj.Status {
	case StatusDeleted:
		http.NotFound(w, r)
	case StatusTakedown:
		if s.cfg.Kind == urlx.KindImageSharing {
			// Image hosts show a banner image in place of the removed
			// content — the crawler downloads it, and the NSFV stage
			// later routes it to SFV.
			banner := imagex.GenErrorBanner(uint64(len(path)), "IMAGE REMOVED TOS VIOLATION", 160, 40)
			w.Header().Set("Content-Type", ContentTypeSIMG)
			w.Write(banner.Encode())
			return
		}
		http.Error(w, "file removed for terms of service violation", http.StatusGone)
	default:
		w.Header().Set("Content-Type", obj.ContentType)
		w.Write(obj.Data)
	}
}

// serveLanding writes the landing page used by the snowball-sampling
// "visit" step: it advertises what kind of site this is.
func (s *Site) serveLanding(w http.ResponseWriter) {
	w.Header().Set("Content-Type", ContentTypeHTML)
	var kind string
	switch s.cfg.Kind {
	case urlx.KindImageSharing:
		kind = "image-sharing"
	case urlx.KindCloudStorage:
		kind = "cloud-storage"
	default:
		kind = "other"
	}
	fmt.Fprintf(w, "<html><head><meta name=\"site-kind\" content=%q></head><body>%s — %s</body></html>",
		kind, s.cfg.Domain, kind)
}

// World is a registry of simulated sites behind one HTTP handler.
type World struct {
	mu    sync.RWMutex
	sites map[string]*Site
}

// NewWorld returns an empty hosting world.
func NewWorld() *World {
	return &World{sites: make(map[string]*Site)}
}

// AddSite registers a site; re-adding a domain returns the existing
// site.
func (w *World) AddSite(cfg SiteConfig) *Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.sites[cfg.Domain]; ok {
		return s
	}
	s := &Site{cfg: cfg, objects: make(map[string]*Object)}
	w.sites[cfg.Domain] = s
	return s
}

// Site returns the site for a domain.
func (w *World) Site(domain string) (*Site, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.sites[domain]
	return s, ok
}

// Domains returns all registered domains.
func (w *World) Domains() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.sites))
	for d := range w.sites {
		out = append(out, d)
	}
	return out
}

// ServeHTTP routes /<domain>/<path...> to the matching site.
func (w *World) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	p := strings.TrimPrefix(r.URL.Path, "/")
	domain, rest, _ := strings.Cut(p, "/")
	if domain == "" {
		http.Error(rw, "missing domain segment", http.StatusBadRequest)
		return
	}
	w.mu.RLock()
	site, ok := w.sites[domain]
	w.mu.RUnlock()
	if !ok {
		http.Error(rw, "unknown domain", http.StatusBadGateway)
		return
	}
	site.serve(rw, r, rest)
}

// Resolver returns a function that rewrites an in-forum URL
// ("https://imgur.com/aB3dE") onto the world server's base URL
// ("http://127.0.0.1:PORT/imgur.com/aB3dE"). baseURL must not end with
// a slash.
func (w *World) Resolver(baseURL string) func(string) (string, error) {
	return Resolver(baseURL)
}

// Resolver is the package-level form of World.Resolver: the rewrite is
// a pure function of the base URL, so remote crawlers that never hold
// a *World (crawler.HTTPClient) can share it.
func Resolver(baseURL string) func(string) (string, error) {
	return func(raw string) (string, error) {
		u, err := url.Parse(raw)
		if err != nil {
			return "", fmt.Errorf("hosting: bad url %q: %w", raw, err)
		}
		host := strings.ToLower(u.Hostname())
		if host == "" {
			return "", fmt.Errorf("hosting: url %q has no host", raw)
		}
		path := strings.TrimPrefix(u.Path, "/")
		resolved := baseURL + "/" + host
		if path != "" {
			resolved += "/" + path
		}
		if u.RawQuery != "" {
			resolved += "?" + u.RawQuery
		}
		return resolved, nil
	}
}

// ParseLandingKind recovers the advertised site kind from a landing
// page served by serveLanding — the over-the-wire counterpart of
// VisitKind, used by crawlers that only see the HTTP substrate.
func ParseLandingKind(body []byte) (urlx.Kind, bool) {
	const marker = `<meta name="site-kind" content="`
	s := string(body)
	i := strings.Index(s, marker)
	if i < 0 {
		return urlx.KindUnknown, false
	}
	rest := s[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return urlx.KindUnknown, false
	}
	switch rest[:j] {
	case "image-sharing":
		return urlx.KindImageSharing, true
	case "cloud-storage":
		return urlx.KindCloudStorage, true
	default:
		return urlx.KindUnknown, true
	}
}

// VisitKind reports the kind a site's landing page advertises — the
// oracle behind snowball sampling. Unregistered domains report false.
func (w *World) VisitKind(domain string) (urlx.Kind, bool) {
	s, ok := w.Site(domain)
	if !ok || s.cfg.Defunct {
		return urlx.KindUnknown, false
	}
	return s.cfg.Kind, true
}
