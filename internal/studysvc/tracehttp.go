package studysvc

// Trace endpoints: the service tracer's bounded ring of recent traces,
// served over HTTP.
//
//	GET /v1/trace              list recent trace ids (oldest first)
//	GET /v1/trace/{id}         one trace as span JSON
//	GET /v1/trace/{id}?format=perfetto
//	                           Chrome trace-event export for
//	                           ui.perfetto.dev / chrome://tracing

import (
	"net/http"
)

// traceList is the GET /v1/trace wire form.
type traceList struct {
	Traces []string `json:"traces"`
}

func (s *Service) handleTraceList(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Tracer == nil {
		httpError(w, http.StatusNotFound, "tracing is not enabled on this server")
		return
	}
	ids := s.cfg.Tracer.TraceIDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, traceList{Traces: ids})
}

func (s *Service) handleTraceGet(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Tracer == nil {
		httpError(w, http.StatusNotFound, "tracing is not enabled on this server")
		return
	}
	id := req.PathValue("id")
	tr, ok := s.cfg.Tracer.Trace(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no trace "+id+" in the ring (traces are bounded; rerun and fetch promptly)")
		return
	}
	switch req.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, tr)
	case "perfetto", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(tr.ChromeTrace())
	default:
		httpError(w, http.StatusBadRequest, "unknown format (want json or perfetto)")
	}
}
