package pipeline

import (
	"sync"
	"time"
)

// histBounds are the histogram's bucket upper bounds: exponential from
// 250µs to ~32.8s, which spans a memoized artefact read to a cold
// paper-scale study. Values above the top bound land in the top bucket
// (the snapshot's max still reports the true maximum).
var histBounds = func() []time.Duration {
	out := []time.Duration{250 * time.Microsecond, 500 * time.Microsecond}
	for ms := time.Millisecond; ms <= 32768*time.Millisecond; ms *= 2 {
		out = append(out, ms)
	}
	return out
}()

// Histogram counts durations in fixed exponential latency buckets. It
// is safe for concurrent use; the zero value is not usable — create
// with NewHistogram. A nil *Histogram is a valid no-op sink.
type Histogram struct {
	mu       sync.Mutex
	counts   []int64
	n        int64
	total    time.Duration
	min, max time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(histBounds))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBounds)-1 && d > histBounds[i] {
		i++
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[i]++
	h.n++
	h.total += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations at most LeMS milliseconds (cumulative ranks, not
// cumulative counts — each observation appears in exactly one bucket).
type HistogramBucket struct {
	LeMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, in
// milliseconds. Percentiles are bucket-resolution estimates: the upper
// bound of the bucket holding the rank, clamped to the observed max.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	// Buckets lists only non-empty buckets, in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's state. A nil histogram snapshots to
// the zero value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Count:   h.n,
		TotalMS: ms(h.total),
		MinMS:   ms(h.min),
		MaxMS:   ms(h.max),
	}
	if h.n == 0 {
		return snap
	}
	snap.P50MS = h.quantileLocked(0.50)
	snap.P95MS = h.quantileLocked(0.95)
	snap.P99MS = h.quantileLocked(0.99)
	for i, c := range h.counts {
		if c > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{LeMS: ms(histBounds[i]), Count: c})
		}
	}
	return snap
}

// quantileLocked estimates the q-quantile as the upper bound of the
// bucket containing the rank, clamped to the observed max so a
// one-element histogram reports that element. Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	rank := int64(q*float64(h.n-1)) + 1
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			bound := histBounds[i]
			if bound > h.max {
				bound = h.max
			}
			return ms(bound)
		}
	}
	return ms(h.max)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
