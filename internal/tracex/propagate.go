package tracex

import (
	"context"
	"encoding/hex"
	"net/http"
	"strings"
)

// TraceparentHeader is the W3C trace-context header carrying the
// caller's trace and span ids across an HTTP hop, in both directions:
// the client injects it on requests, and the server echoes the adopted
// trace on responses so the caller learns the shared trace id even
// when it did not start one.
const TraceparentHeader = "Traceparent"

// traceparentVersion and traceparentFlags pin the only version and
// flag byte this implementation speaks: version 00, flags 01
// ("sampled" — everything a deterministic tracer records is sampled).
const (
	traceparentVersion = "00"
	traceparentFlags   = "01"
)

// FormatTraceparent renders sc in W3C form:
// "00-<32 hex trace id>-<16 hex span id>-01". Empty for invalid sc.
func FormatTraceparent(sc SpanContext) string {
	if !sc.IsValid() {
		return ""
	}
	return traceparentVersion + "-" + sc.Trace.String() + "-" + sc.Span.String() + "-" + traceparentFlags
}

// ParseTraceparent parses the W3C form back into a SpanContext. The
// version field is accepted as any two hex digits except "ff"
// (per spec, unknown versions parse by the 00 layout).
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, false
	}
	rawTrace, err := hex.DecodeString(parts[1])
	if err != nil || len(rawTrace) != len(TraceID{}) {
		return SpanContext{}, false
	}
	rawSpan, err := hex.DecodeString(parts[2])
	if err != nil || len(rawSpan) != len(SpanID{}) {
		return SpanContext{}, false
	}
	var sc SpanContext
	copy(sc.Trace[:], rawTrace)
	copy(sc.Span[:], rawSpan)
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Inject writes the current span's traceparent into h (no-op when ctx
// has no open span).
func Inject(ctx context.Context, h http.Header) {
	sc := SpanContextFromContext(ctx)
	if !sc.IsValid() {
		return
	}
	h.Set(TraceparentHeader, FormatTraceparent(sc))
}

// Extract reads a traceparent from h; ok is false when absent or
// malformed.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}
