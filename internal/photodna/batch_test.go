package photodna

import (
	"fmt"
	"testing"

	"repro/internal/randx"
)

// TestMatchBatchEquivalence pins the batch probe to the one-at-a-time
// path: for random hashlists and radii on both sides of the pigeonhole
// fallback boundary, MatchBatch over a pack of queries must return
// exactly MatchHash's (Entry, ok) per query, in query order.
func TestMatchBatchEquivalence(t *testing.T) {
	rng := randx.New(0x6b21)
	for _, radius := range []int{1, 3, DefaultRadius, 15, 16, 40} {
		for trial := 0; trial < 8; trial++ {
			hl := NewHashList(radius)
			entries := make([]RobustHash, 0, 150)
			for i := 0; i < 150; i++ {
				h := randHash(rng)
				entries = append(entries, h)
				hl.AddHash(h, Entry{ID: rng.Intn(40), Actionable: i%2 == 0})
			}
			var queries []RobustHash
			for i := 0; i < 40; i++ {
				queries = append(queries, randHash(rng))
			}
			for i := 0; i < 40; i++ {
				base := entries[rng.Intn(len(entries))]
				for _, d := range []int{radius - 1, radius, radius + 1} {
					if d >= 0 && d <= 128 {
						queries = append(queries, flipBits(rng, base, d))
					}
				}
			}
			queries = append(queries, entries[0], flipBits(rng, entries[1], 1))

			got := hl.MatchBatch(queries, nil)
			if len(got) != len(queries) {
				t.Fatalf("radius=%d trial=%d: %d results for %d queries", radius, trial, len(got), len(queries))
			}
			for qi, q := range queries {
				wantE, wantOK := hl.MatchHash(q)
				if got[qi].OK != wantOK || got[qi].Entry != wantE {
					t.Fatalf("radius=%d trial=%d query=%d: batch=(%+v,%v) single=(%+v,%v)",
						radius, trial, qi, got[qi].Entry, got[qi].OK, wantE, wantOK)
				}
			}
		}
	}
}

// TestMatchBatchDuplicateChunkCandidates plants entries that share
// many chunks with the query, so every probe revisits the same
// candidates through multiple buckets — the case the batch path's
// first-shared-chunk dedup must skip without changing the winner or
// the lowest-ID tie-break.
func TestMatchBatchDuplicateChunkCandidates(t *testing.T) {
	rng := randx.New(41)
	for trial := 0; trial < 20; trial++ {
		hl := NewHashList(8)
		q := randHash(rng)
		// Entries at small distances share nearly every chunk with q
		// (d bits flipped can touch at most d chunks), including q
		// itself at distance 0: sixteen shared chunks, fifteen skipped
		// revisits.
		hl.AddHash(q, Entry{ID: 30})
		for _, id := range rng.Perm(6) {
			hl.AddHash(flipBits(rng, q, 2), Entry{ID: id})
		}
		got := hl.MatchBatch([]RobustHash{q}, nil)
		if !got[0].OK || got[0].Entry.ID != 30 {
			t.Fatalf("trial %d: got (%+v, %v), want the exact hit ID 30", trial, got[0].Entry, got[0].OK)
		}
		// Remove the exact hit from contention: same-distance entries
		// must tie-break on lowest ID despite the duplicated buckets.
		hl2 := NewHashList(8)
		for _, id := range rng.Perm(6) {
			hl2.AddHash(flipBits(rng, q, 3), Entry{ID: id + 1})
		}
		got = hl2.MatchBatch([]RobustHash{q}, nil)
		if !got[0].OK || got[0].Entry.ID != 1 {
			t.Fatalf("trial %d: got (%+v, %v), want lowest equidistant ID 1", trial, got[0].Entry, got[0].OK)
		}
	}
}

// TestMatchBatchPigeonholeBoundary pins the exact radius where the
// chunk index's guarantee ends: at radius 15 an entry at distance 15
// must still be found through the index (15 flipped bits cannot cover
// all 16 chunks), and at radius 16 — where a 16-bit flip CAN touch
// every chunk — the linear fallback must find an entry the index
// would miss.
func TestMatchBatchPigeonholeBoundary(t *testing.T) {
	rng := randx.New(99)

	// radius 15, entry at distance exactly 15: indexable worst case.
	hl := NewHashList(15)
	q := randHash(rng)
	hl.AddHash(flipBits(rng, q, 15), Entry{ID: 5})
	got := hl.MatchBatch([]RobustHash{q}, nil)
	if !got[0].OK || got[0].Entry.ID != 5 {
		t.Fatalf("radius 15: got (%+v, %v), want the distance-15 entry", got[0].Entry, got[0].OK)
	}

	// radius 16, entry at distance 16 with one flipped bit in every
	// chunk: shares no chunk with q, so only the fallback scan finds
	// it.
	hl = NewHashList(16)
	e := q
	for c := 0; c < numChunks; c++ {
		bit := uint(8*c + rng.Intn(8))
		if bit < 64 {
			e.A ^= 1 << bit
		} else {
			e.D ^= 1 << (bit - 64)
		}
	}
	for c := 0; c < numChunks; c++ {
		if chunkOf(e, c) == chunkOf(q, c) {
			t.Fatalf("construction bug: chunk %d still shared", c)
		}
	}
	hl.AddHash(e, Entry{ID: 7})
	got = hl.MatchBatch([]RobustHash{q}, nil)
	if !got[0].OK || got[0].Entry.ID != 7 {
		t.Fatalf("radius 16: got (%+v, %v), want the all-chunks-differ entry via fallback", got[0].Entry, got[0].OK)
	}
}

// TestMatchBatchSmallInputs covers the degenerate shapes: empty packs,
// empty hashlists and single-entry batches.
func TestMatchBatchSmallInputs(t *testing.T) {
	hl := NewHashList(0)
	if got := hl.MatchBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch on empty list: %d results, want 0", len(got))
	}
	q := RobustHash{A: 0xabcd}
	if got := hl.MatchBatch([]RobustHash{q}, nil); len(got) != 1 || got[0].OK {
		t.Fatalf("single query on empty list: %+v, want one miss", got)
	}
	hl.AddHash(q, Entry{ID: 3})
	if got := hl.MatchBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch on populated list: %d results, want 0", len(got))
	}
	got := hl.MatchBatch([]RobustHash{q}, nil)
	if len(got) != 1 || !got[0].OK || got[0].Entry.ID != 3 {
		t.Fatalf("single-entry batch: %+v, want the exact hit", got)
	}
	// Reusing dst appends after the existing results.
	got = hl.MatchBatch([]RobustHash{q}, got[:0])
	if len(got) != 1 || !got[0].OK {
		t.Fatalf("dst reuse: %+v, want one hit", got)
	}
}

// TestMatchBatchZeroAlloc pins the streaming contract: with a
// pre-sized dst, a batch probe must not allocate.
func TestMatchBatchZeroAlloc(t *testing.T) {
	rng := randx.New(13)
	hl := NewHashList(0)
	for i := 0; i < 500; i++ {
		hl.AddHash(randHash(rng), Entry{ID: i})
	}
	queries := make([]RobustHash, 32)
	for i := range queries {
		queries[i] = randHash(rng)
	}
	dst := make([]BatchMatch, 0, len(queries))
	if avg := testing.AllocsPerRun(100, func() { dst = hl.MatchBatch(queries, dst[:0]) }); avg != 0 {
		t.Fatalf("MatchBatch allocates %.1f per op, want 0", avg)
	}
}

// BenchmarkMatchBatch compares a batched pack probe against the same
// queries matched one at a time, at the study's real hashlist size (a
// few dozen flagged images — the linear-cutover path) and at a size
// that exercises the chunk index.
func BenchmarkMatchBatch(b *testing.B) {
	for _, size := range []int{36, 5000} {
		rng := randx.New(17)
		hl := NewHashList(0)
		for i := 0; i < size; i++ {
			hl.AddHash(randHash(rng), Entry{ID: i})
		}
		queries := make([]RobustHash, 64)
		for i := range queries {
			queries[i] = randHash(rng)
		}
		b.Run(fmt.Sprintf("batched/%d", size), func(b *testing.B) {
			dst := make([]BatchMatch, 0, len(queries))
			for i := 0; i < b.N; i++ {
				dst = hl.MatchBatch(queries, dst[:0])
			}
		})
		b.Run(fmt.Sprintf("single/%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					hl.MatchHash(q)
				}
			}
		})
	}
}
