package analyzers

import (
	"go/ast"
	"strings"

	"repro/internal/lintx"
)

// LogField keeps the service spine's operational output structured: in
// internal/studysvc and cmd/ewserve, every log line is a logx JSON
// record with a request or run ID — a raw fmt.Print*/log.Print* there
// bypasses the logger, loses the IDs, and tears a hole in what an
// operator can grep. The ban covers the stdout/stderr convenience
// printers only; fmt.Fprintf to an explicit writer stays legal (it is
// how CLIs in other packages talk to users, and how logx itself is
// built), as does everything in test files.
var LogField = &lintx.Analyzer{
	Name: "logfield",
	Doc:  "studysvc and ewserve must log through logx, not raw fmt/log printers",
	Run:  runLogField,
}

// logFieldPackages are the [penultimate, last] import-path segment
// pairs the rule applies to: the service spine, where structured
// request-scoped logging is the contract, plus the tracer it carries —
// tracex runs inside every instrumented request, so a stray printer
// there would interleave raw text with the service's JSON stream.
var logFieldPackages = [][2]string{
	{"internal", "studysvc"},
	{"internal", "tracex"},
	{"cmd", "ewserve"},
}

// bannedPrinters maps package name → the package-level printers that
// write to stdout/stderr implicitly. fmt's F-variants take a writer
// and are deliberately absent.
var bannedPrinters = map[string][]string{
	"fmt": {"Print", "Printf", "Println"},
	"log": {"Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln"},
}

func runLogField(pass *lintx.Pass) error {
	segs := pathSegments(pass.Pkg.Path())
	if len(segs) < 2 {
		return nil
	}
	tail := [2]string{segs[len(segs)-2], segs[len(segs)-1]}
	applies := false
	for _, want := range logFieldPackages {
		if tail == want {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			names, banned := bannedPrinters[fn.Pkg().Name()]
			if !banned {
				return true
			}
			for _, name := range names {
				if fn.Name() == name && isPkgFunc(pass.Info, call, fn.Pkg().Name(), name) {
					pass.Reportf(call.Pos(), "%s.%s in %s: log through logx so the line carries the request ID and JSON structure",
						fn.Pkg().Name(), fn.Name(), strings.Join(tail[:], "/"))
					break
				}
			}
			return true
		})
	}
	return nil
}
