package urlx

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestExtract(t *testing.T) {
	text := `Preview here: https://imgur.com/aB3dE (mirror http://gyazo.com/xyz).
Pack: https://mediafire.com/file/123?key=9 enjoy!`
	got := Extract(text)
	want := []string{
		"https://imgur.com/aB3dE",
		"http://gyazo.com/xyz",
		"https://mediafire.com/file/123?key=9",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Extract = %v", got)
	}
}

func TestExtractTrimsPunctuation(t *testing.T) {
	got := Extract("see https://imgur.com/abc. and https://mega.nz/f/1,")
	if got[0] != "https://imgur.com/abc" || got[1] != "https://mega.nz/f/1" {
		t.Fatalf("Extract = %v", got)
	}
}

func TestExtractNone(t *testing.T) {
	if got := Extract("no links here, just ewhoring chat"); len(got) != 0 {
		t.Fatalf("Extract = %v", got)
	}
}

func TestExtractPreservesDuplicates(t *testing.T) {
	got := Extract("https://a.com/x https://a.com/x")
	if len(got) != 2 {
		t.Fatalf("Extract = %v", got)
	}
}

func TestDomain(t *testing.T) {
	cases := map[string]string{
		"https://IMGUR.com/abc":            "imgur.com",
		"http://drive.google.com/d/1":      "drive.google.com",
		"https://mega.nz:8443/f/x":         "mega.nz",
		"not a url at all ::: definitely!": "",
	}
	for in, want := range cases {
		if got := Domain(in); got != want {
			t.Errorf("Domain(%q) = %q want %q", in, got, want)
		}
	}
}

func TestDefaultWhitelist(t *testing.T) {
	w := DefaultWhitelist()
	if w.Len() != len(ImageSharingSites)+len(CloudStorageSites) {
		t.Fatalf("Len = %d", w.Len())
	}
	if k, ok := w.Kind("imgur.com"); !ok || k != KindImageSharing {
		t.Error("imgur.com not image sharing")
	}
	if k, ok := w.Kind("mediafire.com"); !ok || k != KindCloudStorage {
		t.Error("mediafire.com not cloud storage")
	}
	if _, ok := w.Kind("example.com"); ok {
		t.Error("unknown domain whitelisted")
	}
}

func TestClassify(t *testing.T) {
	w := DefaultWhitelist()
	l := w.Classify("https://Imgur.com/abc123")
	if l.Domain != "imgur.com" || l.Kind != KindImageSharing {
		t.Fatalf("Classify = %+v", l)
	}
	u := w.Classify("https://randomblog.net/post")
	if u.Kind != KindUnknown {
		t.Fatalf("Classify unknown = %+v", u)
	}
}

func TestCountByDomainAndSorted(t *testing.T) {
	w := DefaultWhitelist()
	links := w.ClassifyAll([]string{
		"https://imgur.com/1", "https://imgur.com/2",
		"https://gyazo.com/1",
		"https://mediafire.com/1",
	})
	tally := CountByDomain(links, KindImageSharing)
	if tally["imgur.com"] != 2 || tally["gyazo.com"] != 1 || len(tally) != 2 {
		t.Fatalf("tally = %v", tally)
	}
	sorted := SortedCounts(tally)
	if sorted[0].Domain != "imgur.com" || sorted[0].Count != 2 {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestSortedCountsTieAlphabetical(t *testing.T) {
	sorted := SortedCounts(map[string]int{"b.com": 1, "a.com": 1})
	if sorted[0].Domain != "a.com" {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestDomainsOfKind(t *testing.T) {
	w := NewWhitelist()
	w.Add("b.com", KindImageSharing)
	w.Add("a.com", KindImageSharing)
	w.Add("c.com", KindCloudStorage)
	got := w.Domains(KindImageSharing)
	if !reflect.DeepEqual(got, []string{"a.com", "b.com"}) {
		t.Fatalf("Domains = %v", got)
	}
}

func TestSnowballExpands(t *testing.T) {
	w := DefaultWhitelist()
	before := w.Len()
	urls := []string{
		"https://imgur.com/x",
		"https://newimagehost.io/a",
		"https://newcloud.cc/f/1",
		"https://randomblog.net/post",
	}
	oracle := func(domain string) (Kind, bool) {
		switch domain {
		case "newimagehost.io":
			return KindImageSharing, true
		case "newcloud.cc":
			return KindCloudStorage, true
		default:
			return KindUnknown, false
		}
	}
	added := Snowball(w, urls, oracle, 0)
	if added != 2 || w.Len() != before+2 {
		t.Fatalf("added = %d, Len = %d", added, w.Len())
	}
	if k, _ := w.Kind("newimagehost.io"); k != KindImageSharing {
		t.Error("snowball misclassified newimagehost.io")
	}
	if _, ok := w.Kind("randomblog.net"); ok {
		t.Error("snowball added a non-hosting domain")
	}
}

func TestSnowballTerminatesAndVisitsOnce(t *testing.T) {
	w := NewWhitelist()
	visits := map[string]int{}
	oracle := func(domain string) (Kind, bool) {
		visits[domain]++
		return KindUnknown, false
	}
	Snowball(w, []string{"https://x.com/1", "https://y.com/2"}, oracle, 10)
	for d, n := range visits {
		if n != 1 {
			t.Errorf("domain %s visited %d times", d, n)
		}
	}
	if len(visits) != 2 {
		t.Fatalf("visited %d domains", len(visits))
	}
}

func TestKindString(t *testing.T) {
	if KindImageSharing.String() != "image sharing" ||
		KindCloudStorage.String() != "cloud storage" ||
		KindUnknown.String() != "unknown" {
		t.Fatal("Kind.String wrong")
	}
}

// Property: every extracted URL starts with http and contains no
// whitespace.
func TestQuickExtractWellFormed(t *testing.T) {
	f := func(prefix, suffix string) bool {
		text := prefix + " https://imgur.com/abc " + suffix
		for _, u := range Extract(text) {
			if len(u) < 7 || (u[:7] != "http://" && u[:8] != "https://") {
				return false
			}
			for _, r := range u {
				if r == ' ' || r == '\n' || r == '\t' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtract(b *testing.B) {
	text := `TOP quality pack! Preview: https://imgur.com/a1b2c3 and
https://gyazo.com/d4e5f6 — full pack at https://mediafire.com/file/xyz
reply below or buy at https://mega.nz/f/abc`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(text)
	}
}
