package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkStudyRunSequential-8   	       1	 244837123 ns/op
BenchmarkStudyRunConcurrent-8   	       1	 199102456 ns/op	  512 B/op	       3 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if art.Goos != "linux" || art.Goarch != "amd64" || art.Pkg != "repro" {
		t.Errorf("header = %+v", art)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(art.Benchmarks))
	}
	seq := art.Benchmarks[0]
	if seq.Name != "StudyRunSequential" || seq.Procs != 8 || seq.Iterations != 1 || seq.NsPerOp != 244837123 {
		t.Errorf("sequential = %+v", seq)
	}
	conc := art.Benchmarks[1]
	if conc.NsPerOp != 199102456 || conc.Extra["B/op"] != 512 || conc.Extra["allocs/op"] != 3 {
		t.Errorf("concurrent = %+v", conc)
	}
	// Raw lines reconstruct benchstat-compatible input.
	if !strings.HasPrefix(seq.Raw, "BenchmarkStudyRunSequential-8") || !strings.Contains(seq.Raw, "ns/op") {
		t.Errorf("raw line mangled: %q", seq.Raw)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 5 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkNoNs-8 1 77 MB/s\n")); err == nil {
		t.Error("line without ns/op accepted")
	}
}

func TestLoadSniffsJSONAndText(t *testing.T) {
	text, err := load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(text.Benchmarks) != 2 {
		t.Fatalf("text load parsed %d benchmarks", len(text.Benchmarks))
	}
	asJSON := `  {"benchmarks":[{"name":"StudyRunSequential","procs":8,"iterations":1,"ns_per_op":5,"raw":"x"}]}`
	art, err := load(strings.NewReader(asJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].NsPerOp != 5 {
		t.Fatalf("JSON load = %+v", art)
	}
	if _, err := load(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func art(pairs ...any) *Artifact {
	a := &Artifact{}
	for i := 0; i+1 < len(pairs); i += 2 {
		a.Benchmarks = append(a.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return a
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	base := art("Pipeline", 100.0, "Sweep", 200.0)
	cur := art("Pipeline", 125.0, "Sweep", 150.0)
	report, failed := diffArtifacts(base, cur, 0.30)
	if failed {
		t.Fatalf("within-tolerance diff failed:\n%s", report)
	}
	if !strings.Contains(report, "gate passed") {
		t.Errorf("report missing verdict:\n%s", report)
	}
}

func TestDiffRegressionFails(t *testing.T) {
	base := art("Pipeline", 100.0)
	cur := art("Pipeline", 131.0)
	report, failed := diffArtifacts(base, cur, 0.30)
	if !failed {
		t.Fatalf("31%% regression passed a 30%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("report missing FAIL marker:\n%s", report)
	}
}

func TestDiffMissingBenchmarkFails(t *testing.T) {
	base := art("Pipeline", 100.0, "Sweep", 200.0)
	cur := art("Pipeline", 100.0)
	report, failed := diffArtifacts(base, cur, 0.30)
	if !failed {
		t.Fatalf("dropped benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "missing from current run") {
		t.Errorf("report missing dropped-benchmark marker:\n%s", report)
	}
}

func TestDiffNewBenchmarkReportedNotFailed(t *testing.T) {
	base := art("Pipeline", 100.0)
	cur := art("Pipeline", 100.0, "Extra", 50.0)
	report, failed := diffArtifacts(base, cur, 0.30)
	if failed {
		t.Fatalf("new benchmark failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "new (not in baseline)") {
		t.Errorf("report missing new-benchmark marker:\n%s", report)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := art("Pipeline", 100.0)
	cur := art("Pipeline", 10.0)
	if report, failed := diffArtifacts(base, cur, 0.30); failed {
		t.Fatalf("a 10x improvement failed the gate:\n%s", report)
	}
}

func withExtra(a *Artifact, name string, extra map[string]float64) *Artifact {
	for i := range a.Benchmarks {
		if a.Benchmarks[i].Name == name {
			a.Benchmarks[i].Extra = extra
		}
	}
	return a
}

func TestDiffExtraRelativeGate(t *testing.T) {
	base := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.10})
	cur := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.12})
	if report, failed := diffArtifacts(base, cur, 0.30); failed {
		t.Fatalf("+20%% extra failed a 30%% gate:\n%s", report)
	}
	cur = withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.14})
	report, failed := diffArtifacts(base, cur, 0.30)
	if !failed {
		t.Fatalf("+40%% extra passed a 30%% gate:\n%s", report)
	}
	if !strings.Contains(report, "shed_rate") || !strings.Contains(report, "FAIL") {
		t.Errorf("report missing extra failure line:\n%s", report)
	}
}

func TestDiffExtraZeroBaselineAbsoluteGate(t *testing.T) {
	base := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0})
	// Below the tolerance: no relative scale from zero, so the
	// tolerance is the absolute ceiling.
	cur := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.25})
	if report, failed := diffArtifacts(base, cur, 0.30); failed {
		t.Fatalf("extra under the absolute ceiling failed:\n%s", report)
	}
	cur = withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.31})
	report, failed := diffArtifacts(base, cur, 0.30)
	if !failed {
		t.Fatalf("extra over the absolute ceiling passed:\n%s", report)
	}
	if !strings.Contains(report, "absolute ceiling") {
		t.Errorf("report missing absolute-ceiling marker:\n%s", report)
	}
}

func TestDiffExtraMissingUnitFails(t *testing.T) {
	base := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.10})
	cur := art("Shed", 100.0)
	report, failed := diffArtifacts(base, cur, 0.30)
	if !failed {
		t.Fatalf("dropped extra unit passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "unit missing from current run") {
		t.Errorf("report missing dropped-unit marker:\n%s", report)
	}
}

func TestDiffExtraImprovementPasses(t *testing.T) {
	base := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0.50})
	cur := withExtra(art("Shed", 100.0), "Shed", map[string]float64{"shed_rate": 0})
	if report, failed := diffArtifacts(base, cur, 0.30); failed {
		t.Fatalf("extra improvement failed the gate:\n%s", report)
	}
}
