package core

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/faultx"
	"repro/internal/reverse"
	"repro/internal/synth"
	"repro/internal/wayback"
)

// faultedSubstrate serves an identically-seeded world's substrate the
// way `ewserve -faults profile` does: all three handlers behind one
// shared fault-injection middleware.
func faultedSubstrate(t *testing.T, cfg synth.Config, profile string) *HTTPBackend {
	t.Helper()
	plan, err := faultx.ParseProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultx.NewInjector(plan)
	served := synth.Generate(cfg)
	hostSrv := httptest.NewServer(faultx.Middleware(inj, nil)(served.Web))
	t.Cleanup(hostSrv.Close)
	revSrv := httptest.NewServer(faultx.Middleware(inj, faultx.FixedHost("reverse"))(reverse.Handler(served.Reverse)))
	t.Cleanup(revSrv.Close)
	waySrv := httptest.NewServer(faultx.Middleware(inj, faultx.FixedHost("wayback"))(wayback.Handler(served.Wayback)))
	t.Cleanup(waySrv.Close)
	return NewHTTPBackend(crawler.NewHTTPClient(crawler.HTTPConfig{
		HostingURL:  hostSrv.URL,
		ReverseURL:  revSrv.URL,
		WaybackURL:  waySrv.URL,
		Crawl:       crawler.Config{Concurrency: 8},
		BackoffBase: time.Millisecond,
	}))
}

// TestRemoteFaultRetryableEquivalence pins the tentpole invariant on
// the remote seam: a study crawling an `ewserve -faults`-style
// substrate under a retryable-only schedule — every service, hosting
// and reverse and wayback alike, rate-limiting the first two requests
// of each URL — produces Results bit-identical to the in-process,
// fault-free run.
func TestRemoteFaultRetryableEquivalence(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        4,
	}
	ctx := context.Background()

	want, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	backend := faultedSubstrate(t, opts.Synth, "failures=2;retry-after=1ms;ratelimit=*")
	remote := NewStudy(opts)
	remote.UseBackend(backend)
	got, err := remote.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Err(); err != nil {
		t.Fatalf("retryable-only schedule leaked %d lookup errors, first: %v", backend.ErrCount(), err)
	}
	diffResults(t, want, got, "remote rate-limited vs in-process fault-free")
	if got.Degraded() {
		t.Error("retryable-only remote schedule reported degradation")
	}
}

// TestRemoteFaultDownHostDegrades pins the degradation contract on the
// remote seam: a permanently dead substrate host yields a degraded —
// not failed — study whose ledger names exactly the dead host, and the
// degraded result is deterministic run to run.
func TestRemoteFaultDownHostDegrades(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        4,
	}
	ctx := context.Background()

	baseline, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := baseline.CrawlStats.Coverage.Hosts[0]
	for _, h := range baseline.CrawlStats.Coverage.Hosts {
		if h.Tasks > victim.Tasks {
			victim = h
		}
	}

	run := func() *Results {
		backend := faultedSubstrate(t, opts.Synth, "down="+victim.Host)
		s := NewStudy(opts)
		s.UseBackend(backend)
		res, err := s.Run(ctx)
		if err != nil {
			t.Fatalf("dead remote host aborted the study: %v", err)
		}
		return res
	}
	got := run()
	if !got.Degraded() {
		t.Fatal("dead remote host did not mark the study degraded")
	}
	cov := got.CrawlStats.Coverage
	if len(cov.DeadHosts) != 1 || cov.DeadHosts[0] != victim.Host {
		t.Fatalf("DeadHosts = %v, want exactly [%s]", cov.DeadHosts, victim.Host)
	}
	if cov.Errors != victim.Tasks {
		t.Fatalf("lost %d tasks, want %d (all of %s)", cov.Errors, victim.Tasks, victim.Host)
	}
	diffResults(t, got, run(), "remote degraded run repeated")
}
