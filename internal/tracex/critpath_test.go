package tracex

import (
	"strings"
	"testing"
)

// diamondDeps mirrors the study graph's shape in miniature:
// synth <- select <- {classifier, links}, links <- crawl, and a final
// node joining both branches.
func diamondDeps() map[string][]string {
	return map[string][]string{
		"node select":     {"synth"},
		"node classifier": {"node select"},
		"node links":      {"node classifier"},
		"node crawl":      {"node links"},
		"node earnings":   {"node select", "node links"},
	}
}

func span(name string, start, dur int64) SpanRecord {
	return SpanRecord{TraceID: "t", SpanID: name, Name: name, StartUS: start, DurUS: dur}
}

func TestCriticalPathColdStudy(t *testing.T) {
	tr := Trace{TraceID: "t", Spans: []SpanRecord{
		span("synth", 0, 400),
		span("node select", 400, 10),
		span("node classifier", 410, 20),
		span("node links", 430, 5),
		span("node crawl", 435, 300),
		span("node earnings", 435, 50),
		span("http POST /v1/run", 0, 740), // outside the graph: must not chain
	}}
	rep := CriticalPath(tr, diamondDeps())
	if rep.TotalUS != 740 {
		t.Fatalf("TotalUS = %d, want 740", rep.TotalUS)
	}
	// synth(400)+select(10)+classifier(20)+links(5)+crawl(300) = 735.
	if rep.CriticalUS != 735 {
		t.Fatalf("CriticalUS = %d, want 735", rep.CriticalUS)
	}
	wantPath := []string{"synth", "node select", "node classifier", "node links", "node crawl"}
	if strings.Join(rep.Path, ",") != strings.Join(wantPath, ",") {
		t.Fatalf("Path = %v, want %v", rep.Path, wantPath)
	}
	slack := make(map[string]int64)
	onPath := make(map[string]bool)
	share := make(map[string]float64)
	for _, n := range rep.Nodes {
		slack[n.Name] = n.SlackUS
		onPath[n.Name] = n.OnPath
		share[n.Name] = n.Share
	}
	for _, n := range wantPath {
		if slack[n] != 0 || !onPath[n] {
			t.Fatalf("%s: slack %d onPath %v, want 0/true", n, slack[n], onPath[n])
		}
	}
	// earnings chain: synth+select+links-chain... its longest chain is
	// synth(400)+select(10)+classifier(20)+links(5)+earnings(50)=485;
	// slack = 735-485 = 250.
	if slack["node earnings"] != 250 || onPath["node earnings"] {
		t.Fatalf("earnings slack %d onPath %v, want 250/false", slack["node earnings"], onPath["node earnings"])
	}
	if got := share["synth"]; got < 0.54 || got > 0.55 {
		t.Fatalf("synth share = %v, want ~0.5405 (400/740)", got)
	}
	// The dominant node leads the table.
	if rep.Nodes[0].Name != "synth" {
		t.Fatalf("top node = %s, want synth", rep.Nodes[0].Name)
	}
	out := rep.Render()
	for _, want := range []string{"critical path", "synth -> node select", "slack"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathWarmStudyDropsSynth(t *testing.T) {
	// Warm run: no synth span, nodes are memo hits with tiny walls.
	tr := Trace{TraceID: "t", Spans: []SpanRecord{
		span("node select", 0, 2),
		span("node classifier", 2, 3),
		span("node links", 5, 1),
		span("node crawl", 6, 4),
	}}
	rep := CriticalPath(tr, diamondDeps())
	if rep.CriticalUS != 10 {
		t.Fatalf("CriticalUS = %d, want 10", rep.CriticalUS)
	}
	for _, n := range rep.Path {
		if n == "synth" {
			t.Fatal("warm path contains synth, which never ran")
		}
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	rep := CriticalPath(Trace{TraceID: "t"}, diamondDeps())
	if rep.CriticalUS != 0 || len(rep.Path) != 0 {
		t.Fatalf("empty trace report = %+v", rep)
	}
	if !strings.Contains(rep.Render(), "no graph spans") {
		t.Fatal("empty render lacks explanation")
	}
}

func TestCriticalPathRepeatedSpansTakeMax(t *testing.T) {
	// A node retried twice: wall is the max single span, not the sum.
	tr := Trace{TraceID: "t", Spans: []SpanRecord{
		{TraceID: "t", SpanID: "a", Name: "synth", StartUS: 0, DurUS: 100},
		{TraceID: "t", SpanID: "b", Name: "synth", StartUS: 100, DurUS: 60},
		span("node select", 160, 10),
	}}
	rep := CriticalPath(tr, map[string][]string{"node select": {"synth"}})
	if rep.CriticalUS != 110 {
		t.Fatalf("CriticalUS = %d, want 110 (max synth 100 + select 10)", rep.CriticalUS)
	}
}
