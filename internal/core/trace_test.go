package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/artefact"
	"repro/internal/synth"
	"repro/internal/tracex"
)

var updateTrace = flag.Bool("update", false, "rewrite trace golden files with the current output")

// traceStudy runs one seed-77 study under a tracer and returns the
// recorded trace. A cold run generates the world inside a "synth" span
// (as studysvc.execute does); a warm run reuses world and memo, so its
// trace is what the service records on a cache-warm request.
func traceStudy(t *testing.T, tracer *tracex.Tracer, store *artefact.Store, world *synth.World) (tracex.Trace, *synth.World) {
	t.Helper()
	opts := Options{
		// Synth workers pinned too: the synth span carries the count as
		// an attr and its children depend on the generation path.
		Synth:          synth.Config{Seed: 77, Scale: 0.02, Workers: 2},
		AnnotationSize: 300,
		// Pin both worker counts: stage spans carry them as attrs, and
		// the default (GOMAXPROCS) would make the golden machine-shaped.
		Workers:          2,
		CrawlConcurrency: 2,
	}
	ctx := tracex.NewContext(context.Background(), tracer)
	ctx, root := tracex.StartSpan(ctx, "run")
	var s *Study
	if world == nil {
		sctx, synthSpan := tracex.StartSpan(ctx, "synth")
		synthSpan.SetAttr("workers", strconv.Itoa(opts.Synth.EffectiveWorkers()))
		s = NewStudyContext(sctx, opts)
		synthSpan.End()
	} else {
		s = NewStudyWithWorld(opts, world)
	}
	s.UseMemo(store)
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()
	tr, ok := tracer.Trace(root.Context().Trace.String())
	if !ok {
		t.Fatal("study trace not recorded")
	}
	return tr, s.World
}

// TestStudyTraceGolden pins the aggregated span tree of a seed-77
// study, cold and warm, as golden JSON (tracex.Trace.MarshalTree drops
// ids and timings, so the tree is identical across runs whatever the
// goroutine interleaving). The warm run shares the cold run's world
// and artefact memo — the trace the service records on a cache-warm
// request — and must show memo-hit node spans, no synth span and zero
// crawl leaf spans. Regenerate deliberately with:
//
//	go test ./internal/core -run TestStudyTraceGolden -update
func TestStudyTraceGolden(t *testing.T) {
	tracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(9)})
	store := artefact.NewStore(0)

	cold, world := traceStudy(t, tracer, store, nil)
	warm, _ := traceStudy(t, tracer, store, world)

	checkGolden(t, "cold", cold)
	checkGolden(t, "warm", warm)

	coldByName := spanCounts(cold)
	warmByName := spanCounts(warm)
	if coldByName["synth"] != 1 {
		t.Errorf("cold trace has %d synth spans, want 1", coldByName["synth"])
	}
	if coldByName["crawl fetch"] == 0 {
		t.Error("cold trace has no crawl leaf spans")
	}
	if n := warmByName["synth"]; n != 0 {
		t.Errorf("warm trace has %d synth spans, want 0 (world was reused)", n)
	}
	if n := warmByName["crawl fetch"]; n != 0 {
		t.Errorf("warm trace has %d crawl leaf spans, want 0 (crawl served from memo)", n)
	}
	hits, computes := outcomes(warm)
	if hits == 0 {
		t.Error("warm trace shows no memo-hit node spans")
	}
	if computes != 0 {
		t.Errorf("warm trace recomputed %d nodes, want 0", computes)
	}
}

// checkGolden compares tr's aggregated tree against its golden file.
func checkGolden(t *testing.T, name string, tr tracex.Trace) {
	t.Helper()
	got := tr.MarshalTree()
	golden := filepath.Join("testdata", "trace_seed77_"+name+".golden.json")
	if *updateTrace {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s span tree drifted from %s (rerun with -update if intended)\ngot:\n%s", name, golden, got)
	}
}

// spanCounts tallies spans by name.
func spanCounts(tr tracex.Trace) map[string]int {
	out := make(map[string]int)
	for _, s := range tr.Spans {
		out[s.Name]++
	}
	return out
}

// outcomes tallies node-span outcomes: memo hits vs fresh computes.
func outcomes(tr tracex.Trace) (hits, computes int) {
	for _, s := range tr.Spans {
		if !strings.HasPrefix(s.Name, "node ") {
			continue
		}
		switch s.Attrs["outcome"] {
		case "hit":
			hits++
		case "compute":
			computes++
		}
	}
	return hits, computes
}
