// Command ewreport regenerates every table and figure of the study
// against a synthetic world and prints them in the paper's layout. The
// study runs on the concurrent stage engine by default; -seq runs the
// sequential reference implementation instead (identical output for
// the same seed).
//
// Usage:
//
//	ewreport [-seed N] [-scale F] [-annotation N] [-workers N] [-seq]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 ≈ paper scale)")
	annotation := flag.Int("annotation", 1000, "annotated-thread corpus size")
	workers := flag.Int("workers", 0, "pipeline stage workers (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run the sequential reference implementation")
	flag.Parse()

	start := time.Now()
	study := core.NewStudy(core.Options{
		Synth:          synth.Config{Seed: *seed, Scale: *scale},
		AnnotationSize: *annotation,
		Workers:        *workers,
	})
	fmt.Fprintf(os.Stderr, "world generated in %v: %d threads, %d posts, %d actors\n",
		time.Since(start).Round(time.Millisecond),
		study.World.Store.NumThreads(), study.World.Store.NumPosts(), study.World.Store.NumActors())

	var res *core.Results
	var err error
	if *seq {
		res, err = study.RunSequential(context.Background())
	} else {
		res, err = study.Run(context.Background())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "study complete in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(report.Full(res))
}
