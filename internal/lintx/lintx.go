// Package lintx is the project's static-analysis substrate: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic, an analysistest
// fixture runner) plus a package loader built on `go list` and
// go/types.
//
// The upstream framework is the natural host for these checkers, but
// this module is deliberately dependency-free (go.mod has no
// requirements and the build environment is offline), so lintx keeps
// the same shape — an Analyzer value with a Run func over a Pass —
// on top of the standard library only. If the module ever grows a
// vendored x/tools, the analyzers port mechanically: every Pass field
// here is a subset of analysis.Pass.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer|all> <reason>
//
// on the flagged line, or alone on the line above it, silences the
// named analyzer at that site. The reason is mandatory — a suppression
// without a rationale is itself reported. DESIGN.md §10 lists the
// enforced invariants and when suppressing each is legitimate.
package lintx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite ports
// mechanically if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description: the rule, and why the
	// project enforces it.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax, including in-package test
	// files. External test packages ("foo_test") load as their own
	// Pass.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Analyzers whose rules target library code (ctxhygiene's
// context rule) use it to exempt tests.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf is Info.TypeOf with a nil guard, for brevity in analyzers.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// RunAnalyzers applies each analyzer to each package and returns the
// surviving diagnostics (suppressions applied, malformed suppressions
// reported) sorted by position. The returned error reflects analyzer
// runtime failures, not findings. knownNames lists additional valid
// //lint:ignore targets beyond the analyzers being run, so a
// filtered run (ewlint -run) does not flag directives naming the
// analyzers it skipped.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, knownNames ...string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, applyDirectives(pkg, analyzers, knownNames, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string // analyzer name or "all"
	reason   string
	pos      token.Position
}

// parseDirectives extracts the //lint:ignore directives of one file.
// Malformed directives (no analyzer, or no reason) come back as
// diagnostics so a suppression can never silently rot.
func parseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool) (dirs []directive, malformed []Diagnostic) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Analyzer: "lintx",
					Pos:      pos,
					Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer|all> <reason>\"",
				})
				continue
			}
			if fields[0] != "all" && !known[fields[0]] {
				malformed = append(malformed, Diagnostic{
					Analyzer: "lintx",
					Pos:      pos,
					Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0]),
				})
				continue
			}
			dirs = append(dirs, directive{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				pos:      pos,
			})
		}
	}
	return dirs, malformed
}

// applyDirectives filters diags through the package's //lint:ignore
// comments. A directive suppresses matching diagnostics on its own
// line and on the following line (the directive-above-the-statement
// form).
func applyDirectives(pkg *Package, analyzers []*Analyzer, knownNames []string, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(analyzers)+len(knownNames))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, n := range knownNames {
		known[n] = true
	}
	// suppressed["file:line"] -> set of analyzer names ("all" matches any).
	suppressed := make(map[string]map[string]bool)
	var out []Diagnostic
	for _, f := range pkg.Files {
		dirs, malformed := parseDirectives(pkg.Fset, f, known)
		out = append(out, malformed...)
		for _, d := range dirs {
			for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
				key := fmt.Sprintf("%s:%d", d.pos.Filename, line)
				if suppressed[key] == nil {
					suppressed[key] = make(map[string]bool)
				}
				suppressed[key][d.analyzer] = true
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if s := suppressed[key]; s != nil && (s["all"] || s[d.Analyzer]) {
			continue
		}
		out = append(out, d)
	}
	return out
}
