package synth

import (
	"strings"
	"testing"

	"repro/internal/earnings"
	"repro/internal/forum"
	"repro/internal/urlx"
)

// testWorld generates a small world once and shares it across tests.
var testW = Generate(Config{Seed: 7, Scale: 0.02, ImageSize: 48})

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 0.01})
	b := Generate(Config{Seed: 7, Scale: 0.01})
	if a.Store.NumThreads() != b.Store.NumThreads() ||
		a.Store.NumPosts() != b.Store.NumPosts() ||
		a.Store.NumActors() != b.Store.NumActors() {
		t.Fatalf("same seed differs: %d/%d/%d vs %d/%d/%d",
			a.Store.NumThreads(), a.Store.NumPosts(), a.Store.NumActors(),
			b.Store.NumThreads(), b.Store.NumPosts(), b.Store.NumActors())
	}
	// Spot-check content equality.
	if a.Store.Thread(1).Heading != b.Store.Thread(1).Heading {
		t.Fatal("thread 1 heading differs")
	}
	if len(a.Proofs) != len(b.Proofs) {
		t.Fatal("proof counts differ")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 0.01})
	b := Generate(Config{Seed: 8, Scale: 0.01})
	if a.Store.Thread(1).Heading == b.Store.Thread(1).Heading &&
		a.Store.NumPosts() == b.Store.NumPosts() {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestForumRoster(t *testing.T) {
	if got := testW.Store.NumForums(); got != 10 {
		t.Fatalf("NumForums = %d want 10", got)
	}
	for _, name := range []string{"Hackforums", "OGUsers", "BlackHatWorld"} {
		if _, ok := testW.Store.ForumByName(name); !ok {
			t.Errorf("missing forum %s", name)
		}
	}
}

func TestScaledCounts(t *testing.T) {
	// At scale 0.02 expect roughly 0.02x Table 1 totals (44 520
	// threads → ~890; tolerant bounds, the generator is stochastic).
	ew := testW.EWhoringAll()
	if len(ew) < 500 || len(ew) > 1600 {
		t.Errorf("eWhoring threads = %d, want ≈890", len(ew))
	}
	// eWhoring posts ≈ 626k * 0.02 = 12.5k. Count posts in eWhoring
	// threads.
	posts := 0
	for _, tid := range ew {
		posts += len(testW.Store.PostsInThread(tid))
	}
	if posts < 5000 || posts > 30000 {
		t.Errorf("eWhoring posts = %d, want ≈12.5k", posts)
	}
}

func TestTOPQuotas(t *testing.T) {
	// TOPs ≈ 4137*0.02 ≈ 83, and BlackHatWorld must have none.
	total := 0
	bhw, _ := testW.Store.ForumByName("BlackHatWorld")
	for _, tid := range testW.EWhoringAll() {
		tr := testW.Truth[tid]
		if tr == nil || tr.Kind != KindTOP {
			continue
		}
		total++
		if testW.Store.Thread(tid).Forum == bhw.ID {
			t.Errorf("BlackHatWorld has a TOP (thread %d)", tid)
		}
	}
	if total < 40 || total > 160 {
		t.Errorf("TOPs = %d, want ≈83", total)
	}
}

func TestKeywordSelectionMatchesGroundTruth(t *testing.T) {
	// The paper's selection (heading keywords + the HF eWhoring
	// board) must recover exactly the ground-truth eWhoring set.
	selected := testW.Store.SearchHeadings("ewhor", "e-whor")
	set := map[int]bool{}
	for _, tid := range selected {
		set[int(tid)] = true
	}
	for _, tid := range testW.Store.ThreadsInBoard(testW.HFEWhoring) {
		set[int(tid)] = true
	}
	truth := map[int]bool{}
	for _, tid := range testW.EWhoringAll() {
		truth[int(tid)] = true
	}
	for tid := range truth {
		if !set[tid] {
			t.Fatalf("ground-truth eWhoring thread %d not selectable", tid)
		}
	}
	for tid := range set {
		if !truth[tid] {
			t.Fatalf("selection includes non-eWhoring thread %d (%q)",
				tid, testW.Store.Thread(forum.ThreadID(tid)).Heading)
		}
	}
}

func TestTOPLinksResolvable(t *testing.T) {
	free, withLinks := 0, 0
	for _, tid := range testW.EWhoringAll() {
		tr := testW.Truth[tid]
		if tr == nil || tr.Kind != KindTOP {
			continue
		}
		if tr.TOP.Free {
			free++
			if len(tr.TOP.PackURLs) > 0 {
				withLinks++
			}
			for _, u := range tr.TOP.PackURLs {
				d := urlx.Domain(u)
				if _, ok := testW.Web.Site(d); !ok {
					t.Fatalf("pack URL %s points at unregistered site", u)
				}
			}
		}
		// Links must appear in the first post body.
		body := testW.Store.FirstPost(tid).Body
		for _, u := range append(tr.TOP.PreviewURLs, tr.TOP.PackURLs...) {
			if !strings.Contains(body, u) {
				t.Fatalf("TOP %d body missing link %s", tid, u)
			}
		}
	}
	if free == 0 || withLinks == 0 {
		t.Fatalf("no free TOPs with pack links (free=%d)", free)
	}
}

func TestFlaggedPacksExist(t *testing.T) {
	if testW.NumFlaggedTOPs == 0 {
		t.Fatal("no TOP carries hashlisted material; the PhotoDNA path is dead")
	}
	if testW.HashList.Len() == 0 {
		t.Fatal("hashlist empty")
	}
}

func TestProofsGenerated(t *testing.T) {
	if len(testW.Proofs) == 0 {
		t.Fatal("no proof links generated")
	}
	kinds := map[ProofKind]int{}
	platforms := map[earnings.Platform]int{}
	for _, p := range testW.Proofs {
		kinds[p.Kind]++
		if p.Thread == 0 {
			t.Fatal("proof with unset thread")
		}
		if p.Kind == ProofEarnings {
			platforms[p.Truth.Platform]++
			if p.Truth.Total <= 0 {
				t.Fatalf("proof with non-positive total: %+v", p.Truth)
			}
		}
	}
	if kinds[ProofEarnings] == 0 || kinds[ProofDead] == 0 {
		t.Fatalf("proof kind mix degenerate: %v", kinds)
	}
	if platforms[earnings.PlatformPayPal] == 0 || platforms[earnings.PlatformAGC] == 0 {
		t.Fatalf("platform mix degenerate: %v", platforms)
	}
}

func TestPlatformShiftOverTime(t *testing.T) {
	// Figure 3: PayPal dominates before 2014, AGC after 2016.
	w := Generate(Config{Seed: 99, Scale: 0.05})
	early := map[earnings.Platform]int{}
	late := map[earnings.Platform]int{}
	for _, p := range w.Proofs {
		if p.Kind != ProofEarnings {
			continue
		}
		if p.Date.Year() < 2014 {
			early[p.Truth.Platform]++
		} else if p.Date.Year() >= 2017 {
			late[p.Truth.Platform]++
		}
	}
	if early[earnings.PlatformPayPal] <= early[earnings.PlatformAGC] {
		t.Errorf("early era: PayPal %d <= AGC %d", early[earnings.PlatformPayPal], early[earnings.PlatformAGC])
	}
	if late[earnings.PlatformAGC] <= late[earnings.PlatformPayPal] {
		t.Errorf("late era: AGC %d <= PayPal %d", late[earnings.PlatformAGC], late[earnings.PlatformPayPal])
	}
}

func TestExchangeBoardFormat(t *testing.T) {
	threads := testW.Store.ThreadsInBoard(testW.HFCurrency)
	if len(threads) == 0 {
		t.Fatal("Currency Exchange board empty")
	}
	parsed := 0
	for _, tid := range threads {
		h := testW.Store.Thread(tid).Heading
		if strings.Contains(strings.ToLower(h), "ewhor") {
			t.Fatalf("exchange heading leaks eWhoring keyword: %q", h)
		}
		if _, ok := earnings.ParseExchangeHeading(h); ok {
			parsed++
		}
	}
	if parsed < len(threads)*9/10 {
		t.Fatalf("only %d/%d exchange headings parse", parsed, len(threads))
	}
}

func TestActorTruthWindows(t *testing.T) {
	checked := 0
	for _, at := range testW.Actors {
		if at.EwEnd.Before(at.EwStart) {
			t.Fatalf("actor %d: EwEnd before EwStart", at.ID)
		}
		if at.FirstActivity.After(at.EwStart) || at.LastActivity.Before(at.EwEnd) {
			t.Fatalf("actor %d: activity window does not contain eWhoring window", at.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no actors")
	}
}

func TestAnnotationSample(t *testing.T) {
	sample := testW.AnnotationSample(200, 1)
	if len(sample) != 200 {
		t.Fatalf("sample size %d", len(sample))
	}
	tops := 0
	seen := map[int]bool{}
	for _, lt := range sample {
		if seen[int(lt.Thread)] {
			t.Fatal("duplicate thread in sample")
		}
		seen[int(lt.Thread)] = true
		truth := testW.Truth[lt.Thread]
		if lt.IsTOP != (truth != nil && truth.Kind == KindTOP) {
			t.Fatalf("label mismatch for thread %d", lt.Thread)
		}
		if lt.IsTOP {
			tops++
		}
	}
	// ~17.5% TOPs (paper: 175 of 1 000).
	if tops < 20 || tops > 50 {
		t.Errorf("sample TOPs = %d/200, want ≈35", tops)
	}
	// Deterministic.
	again := testW.AnnotationSample(200, 1)
	for i := range sample {
		if sample[i] != again[i] {
			t.Fatal("AnnotationSample not deterministic")
		}
	}
}

func TestReverseIndexPopulated(t *testing.T) {
	if testW.Reverse.Len() == 0 {
		t.Fatal("reverse index empty")
	}
	if testW.Wayback.NumURLs() == 0 {
		t.Fatal("wayback archive empty")
	}
	if testW.Directory.Len() == 0 {
		t.Fatal("domain directory empty")
	}
}

func TestZeroMatchModelsExist(t *testing.T) {
	indexed, private := 0, 0
	for _, m := range testW.Models {
		if m.Indexed {
			indexed++
		} else {
			private++
		}
	}
	if private == 0 || indexed == 0 {
		t.Fatalf("model index mix degenerate: %d indexed, %d private", indexed, private)
	}
}

func TestSkipImages(t *testing.T) {
	w := Generate(Config{Seed: 3, Scale: 0.01, SkipImages: true})
	if len(w.Models) != 0 || w.Reverse.Len() != 0 {
		t.Fatal("SkipImages still generated the image world")
	}
	if w.Store.NumThreads() == 0 {
		t.Fatal("SkipImages dropped the forum corpus")
	}
}

func TestInterestCategoriesPresent(t *testing.T) {
	// Hackforums needs boards for every category plus the special
	// boards.
	cats := map[string]bool{}
	for _, b := range testW.Store.Boards(testW.HF) {
		cats[b.Category] = true
	}
	for _, c := range hfCategories {
		if !cats[c] {
			t.Errorf("missing HF category %s", c)
		}
	}
	if !cats["Lounge"] {
		t.Error("missing The Lounge")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(Config{Seed: uint64(i + 1), Scale: 0.01})
	}
}
