package tracex

import (
	"fmt"
	"sort"
	"strings"
)

// CritNode is one named operation's row in a critical-path report.
type CritNode struct {
	Name string `json:"name"`
	// WallUS is the operation's wall time: the longest single span with
	// this name in the trace (a node computes once per study; retried or
	// repeated spans take the max, not the sum, since repeats of one
	// name overlap the same dependency edge).
	WallUS int64 `json:"wall_us"`
	// Share is WallUS over the trace's total wall, the "cold start is
	// X% synth" number.
	Share float64 `json:"share"`
	// SlackUS is how much this node could slow down before the critical
	// path moves: critical-path length minus the longest dependency
	// chain through this node. Zero for nodes on the critical path.
	SlackUS int64 `json:"slack_us"`
	// OnPath marks membership in the reported longest chain.
	OnPath bool `json:"on_path"`
}

// CritReport is the critical-path analysis of one trace against a
// declared dependency graph: which chain of operations bounds the wall
// clock, and how much slack everything else has.
type CritReport struct {
	TraceID string `json:"trace_id"`
	// TotalUS is the trace's observed wall: max span end minus min span
	// start.
	TotalUS int64 `json:"total_us"`
	// CriticalUS is the length of the longest blocking chain under the
	// dependency graph.
	CriticalUS int64 `json:"critical_us"`
	// Path is that chain, dependency-first.
	Path  []string   `json:"path"`
	Nodes []CritNode `json:"nodes"`
}

// CriticalPath analyzes tr against deps, a map from operation name to
// the names it blocks on (the study graph's SpanDeps). Only names with
// at least one span participate — a warm run where "synth" never ran
// simply drops it from every chain. Ties break lexicographically so
// the report is deterministic.
func CriticalPath(tr Trace, deps map[string][]string) CritReport {
	rep := CritReport{TraceID: tr.TraceID}
	if len(tr.Spans) == 0 {
		return rep
	}

	// Wall per name (max single span), plus the trace's total wall.
	wall := make(map[string]int64)
	minStart, maxEnd := tr.Spans[0].StartUS, int64(0)
	for _, s := range tr.Spans {
		if s.StartUS < minStart {
			minStart = s.StartUS
		}
		if end := s.StartUS + s.DurUS; end > maxEnd {
			maxEnd = end
		}
		if s.DurUS > wall[s.Name] {
			wall[s.Name] = s.DurUS
		}
	}
	rep.TotalUS = maxEnd - minStart

	// Restrict the graph to names that actually ran.
	names := make([]string, 0, len(wall))
	for n := range wall {
		if _, declared := deps[n]; !declared && !isDep(n, deps) {
			continue // spans outside the declared graph (http, stages) don't chain
		}
		names = append(names, n)
	}
	sort.Strings(names)
	ran := make(map[string]bool, len(names))
	for _, n := range names {
		ran[n] = true
	}

	// down[n]: longest chain ending at n (n plus its deepest dep chain).
	down := make(map[string]int64)
	var computeDown func(n string) int64
	var stack []string
	computeDown = func(n string) int64 {
		if d, ok := down[n]; ok {
			return d
		}
		for _, s := range stack {
			if s == n {
				return 0 // dependency cycle: declared deps are a DAG, but stay safe
			}
		}
		stack = append(stack, n)
		best := int64(0)
		for _, d := range deps[n] {
			if !ran[d] {
				continue
			}
			if v := computeDown(d); v > best {
				best = v
			}
		}
		stack = stack[:len(stack)-1]
		down[n] = wall[n] + best
		return down[n]
	}
	// up[n]: longest chain from n onward (n plus its deepest dependent
	// chain), via reverse edges.
	rev := make(map[string][]string)
	for n, ds := range deps {
		if !ran[n] {
			continue
		}
		for _, d := range ds {
			if ran[d] {
				rev[d] = append(rev[d], n)
			}
		}
	}
	up := make(map[string]int64)
	var computeUp func(n string) int64
	computeUp = func(n string) int64 {
		if u, ok := up[n]; ok {
			return u
		}
		for _, s := range stack {
			if s == n {
				return 0
			}
		}
		stack = append(stack, n)
		best := int64(0)
		for _, d := range rev[n] {
			if v := computeUp(d); v > best {
				best = v
			}
		}
		stack = stack[:len(stack)-1]
		up[n] = wall[n] + best
		return up[n]
	}

	var crit int64
	for _, n := range names {
		if v := computeDown(n); v > crit {
			crit = v
		}
		computeUp(n)
	}
	rep.CriticalUS = crit

	// Backtrack the path from the deepest sink, deterministically.
	var sink string
	for _, n := range names {
		if sink == "" || down[n] > down[sink] {
			sink = n
		}
	}
	onPath := make(map[string]bool)
	for n := sink; n != ""; {
		rep.Path = append(rep.Path, n)
		onPath[n] = true
		next := ""
		want := down[n] - wall[n]
		for _, d := range deps[n] {
			if ran[d] && down[d] == want && (next == "" || d < next) {
				next = d
			}
		}
		n = next
	}
	// Reverse into dependency-first order.
	for i, j := 0, len(rep.Path)-1; i < j; i, j = i+1, j-1 {
		rep.Path[i], rep.Path[j] = rep.Path[j], rep.Path[i]
	}

	for _, n := range names {
		slack := crit - (down[n] + up[n] - wall[n])
		if slack < 0 {
			slack = 0
		}
		var share float64
		if rep.TotalUS > 0 {
			share = float64(wall[n]) / float64(rep.TotalUS)
		}
		rep.Nodes = append(rep.Nodes, CritNode{
			Name: n, WallUS: wall[n], Share: share, SlackUS: slack, OnPath: onPath[n],
		})
	}
	sort.Slice(rep.Nodes, func(i, j int) bool {
		if rep.Nodes[i].WallUS != rep.Nodes[j].WallUS {
			return rep.Nodes[i].WallUS > rep.Nodes[j].WallUS
		}
		return rep.Nodes[i].Name < rep.Nodes[j].Name
	})
	return rep
}

// isDep reports whether name appears as a dependency of any declared
// node (so leaves like "synth" that have no deps entry still chain).
func isDep(name string, deps map[string][]string) bool {
	for _, ds := range deps {
		for _, d := range ds {
			if d == name {
				return true
			}
		}
	}
	return false
}

// Render formats the report as the table `ewsweep -trace` prints.
func (r CritReport) Render() string {
	var b strings.Builder
	if r.TotalUS == 0 && r.CriticalUS == 0 {
		return "critical path: no graph spans in trace\n"
	}
	pct := 0.0
	if r.TotalUS > 0 {
		pct = 100 * float64(r.CriticalUS) / float64(r.TotalUS)
	}
	fmt.Fprintf(&b, "total wall %s, critical path %s (%.1f%% of total)\n",
		fmtUS(r.TotalUS), fmtUS(r.CriticalUS), pct)
	fmt.Fprintf(&b, "path: %s\n", strings.Join(r.Path, " -> "))
	fmt.Fprintf(&b, "%-24s %10s %7s %10s %s\n", "node", "wall", "share", "slack", "")
	for _, n := range r.Nodes {
		mark := ""
		if n.OnPath {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-24s %10s %6.1f%% %10s %s\n",
			n.Name, fmtUS(n.WallUS), 100*n.Share, fmtUS(n.SlackUS), mark)
	}
	return b.String()
}
