package core

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/crawler"
	"repro/internal/reverse"
	"repro/internal/synth"
	"repro/internal/wayback"
)

// TestHTTPBackendRunMatchesInProcess pins the HTTP-crawl equivalence
// invariant: a study whose every substrate access — crawling, snowball
// landing-page visits, reverse image search, Wayback lookups — travels
// over real net/http against live servers must produce Results
// bit-identical to the in-process run for the same seed.
func TestHTTPBackendRunMatchesInProcess(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        4,
	}
	ctx := context.Background()

	inproc := NewStudy(opts)
	want, err := inproc.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Serve the substrate of an identically-seeded world, the way
	// cmd/ewserve does.
	served := synth.Generate(opts.Synth)
	hostSrv := httptest.NewServer(served.Web)
	defer hostSrv.Close()
	revSrv := httptest.NewServer(reverse.Handler(served.Reverse))
	defer revSrv.Close()
	waySrv := httptest.NewServer(wayback.Handler(served.Wayback))
	defer waySrv.Close()

	backend := NewHTTPBackend(crawler.NewHTTPClient(crawler.HTTPConfig{
		HostingURL: hostSrv.URL,
		ReverseURL: revSrv.URL,
		WaybackURL: waySrv.URL,
		Crawl:      crawler.Config{Concurrency: 8},
	}))
	remote := NewStudy(opts)
	remote.UseBackend(backend)
	got, err := remote.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Err(); err != nil {
		t.Fatalf("HTTP backend recorded %d lookup errors, first: %v", backend.ErrCount(), err)
	}

	wv := reflect.ValueOf(*want)
	gv := reflect.ValueOf(*got)
	rt := wv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("Results.%s differs between in-process and HTTP-backed runs", name)
		}
	}
	if !reflect.DeepEqual(inproc.Hotline.Reports(), remote.Hotline.Reports()) {
		t.Error("hotline reports differ between in-process and HTTP-backed runs")
	}
}

// TestHTTPBackendSequentialRun exercises the HTTP backend under the
// sequential reference implementation as well: both Run paths must sit
// on the same Backend seam.
func TestHTTPBackendSequentialRun(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 11, Scale: 0.015, ImageSize: 48},
		AnnotationSize: 300,
	}
	ctx := context.Background()

	want, err := NewStudy(opts).RunSequential(ctx)
	if err != nil {
		t.Fatal(err)
	}

	served := synth.Generate(opts.Synth)
	hostSrv := httptest.NewServer(served.Web)
	defer hostSrv.Close()
	revSrv := httptest.NewServer(reverse.Handler(served.Reverse))
	defer revSrv.Close()
	waySrv := httptest.NewServer(wayback.Handler(served.Wayback))
	defer waySrv.Close()

	backend := NewHTTPBackend(crawler.NewHTTPClient(crawler.HTTPConfig{
		HostingURL: hostSrv.URL,
		ReverseURL: revSrv.URL,
		WaybackURL: waySrv.URL,
	}))
	remote := NewStudy(opts)
	remote.UseBackend(backend)
	got, err := remote.RunSequential(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Err(); err != nil {
		t.Fatalf("HTTP backend recorded %d lookup errors, first: %v", backend.ErrCount(), err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("sequential HTTP-backed run differs from in-process run")
	}
}
