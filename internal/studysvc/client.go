package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client drives a remote study service — what cmd/ewpipeline -remote
// uses against a live cmd/ewserve.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL (no trailing
// slash). httpClient may be nil (http.DefaultClient).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: httpClient}
}

// Run submits a study request and waits for its result.
func (c *Client) Run(ctx context.Context, r Request) (*Envelope, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/study", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

// Get fetches a run by id.
func (c *Client) Get(ctx context.Context, id string) (*Envelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/study/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("studysvc: bad stats response: %w", err)
	}
	return &st, nil
}

func (c *Client) do(req *http.Request) (*Envelope, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("studysvc: bad response: %w", err)
	}
	return &env, nil
}

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("studysvc: %s (status %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("studysvc: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}
