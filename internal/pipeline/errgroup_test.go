package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestErrGroupFirstErrorWinsAndCancels(t *testing.T) {
	g, ctx := NewErrGroup(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("sibling was not cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if ctx.Err() == nil {
		t.Error("group context not cancelled after Wait")
	}
}

func TestErrGroupAllOK(t *testing.T) {
	g, _ := NewErrGroup(context.Background())
	for i := 0; i < 4; i++ {
		g.Go(func() error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

func TestErrGroupZeroValue(t *testing.T) {
	var g ErrGroup
	g.Go(func() error { return nil })
	g.Go(func() error { return errors.New("only error") })
	if err := g.Wait(); err == nil || err.Error() != "only error" {
		t.Fatalf("Wait = %v", err)
	}
}

func TestErrGroupParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	g, ctx := NewErrGroup(parent)
	g.Go(func() error {
		<-ctx.Done()
		return nil
	})
	cancel()
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v, want nil (parent cancel is not a branch error)", err)
	}
}
