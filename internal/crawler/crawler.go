// Package crawler implements the study's custom crawler (§4.2): it
// takes the preview and pack links extracted from Threads Offering
// Packs, downloads them over HTTP with bounded concurrency, per-host
// politeness delays and retries, decompresses pack archives, and
// annotates every downloaded image with the post metadata it came from
// ("for each link, we also annotate associated metadata (e.g., the
// post identifier and author)").
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/forum"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/pipeline"
	"repro/internal/tracex"
	"repro/internal/urlx"
)

// Outcome classifies what happened when a link was fetched.
type Outcome int

// Fetch outcomes.
const (
	// OutcomeOK: content downloaded and decoded.
	OutcomeOK Outcome = iota
	// OutcomeNotFound: the object is gone (404/410) — the link rot the
	// paper hits constantly ("many files and images had been deleted").
	OutcomeNotFound
	// OutcomeLoginRequired: a registration wall; the crawler records
	// and respects it ("we did not download packs from some sites
	// requiring registration, e.g., Dropbox or Google Drive").
	OutcomeLoginRequired
	// OutcomeSiteDown: the whole service is defunct (oron).
	OutcomeSiteDown
	// OutcomeError: transport failure or undecodable payload after
	// retries.
	OutcomeError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNotFound:
		return "not found"
	case OutcomeLoginRequired:
		return "login required"
	case OutcomeSiteDown:
		return "site down"
	case OutcomeError:
		return "error"
	default:
		return "unknown"
	}
}

// Task is one link to fetch, with its forum provenance.
type Task struct {
	Link   urlx.Link
	Thread forum.ThreadID
	Post   forum.PostID
	Author forum.ActorID
}

// Result is the outcome of one task.
type Result struct {
	Task    Task
	Outcome Outcome
	// Images holds the decoded payload: one image for image-sharing
	// links, every archive member for pack links.
	Images []*imagex.Image
	// IsPack reports whether the payload was a zip archive.
	IsPack bool
	Err    error
}

// Config controls crawl behaviour.
type Config struct {
	// Concurrency is the number of parallel workers (default 8).
	Concurrency int
	// PerHostDelay is the politeness delay between requests to the
	// same virtual domain (default 0 — tests and simulations need no
	// throttling, the field exists for live use).
	PerHostDelay time.Duration
	// MaxRetries is the number of re-attempts after transport errors
	// (default 2).
	MaxRetries int
	// BackoffBase is the unit of the deterministic retry backoff:
	// attempt n sleeps n*BackoffBase (default 10ms). No jitter — retry
	// schedules must be reproducible.
	BackoffBase time.Duration
	// MaxBodyBytes caps a response body (default 64 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Crawler downloads links through a resolver (virtual domain → live
// URL) with an injectable HTTP client.
type Crawler struct {
	cfg     Config
	client  *http.Client
	resolve func(string) (string, error)

	mu       sync.Mutex
	lastHost map[string]time.Time
}

// New builds a crawler. client may be nil (http.DefaultClient);
// resolve may be nil (identity).
func New(cfg Config, client *http.Client, resolve func(string) (string, error)) *Crawler {
	if client == nil {
		client = http.DefaultClient
	}
	if resolve == nil {
		resolve = func(s string) (string, error) { return s, nil }
	}
	return &Crawler{
		cfg:      cfg.withDefaults(),
		client:   client,
		resolve:  resolve,
		lastHost: make(map[string]time.Time),
	}
}

// Crawl fetches every task with bounded concurrency. Results are
// returned in task order. Cancel via ctx.
func (c *Crawler) Crawl(ctx context.Context, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = c.fetchOne(ctx, tasks[i])
			}
		}()
	}
feed:
	for i := range tasks {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			for j := i; j < len(tasks); j++ {
				results[j] = Result{Task: tasks[j], Outcome: OutcomeError, Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	return results
}

// CrawlStream fetches every task with bounded concurrency, delivering
// each result on the returned channel in task order as it becomes
// available — the channel counterpart of Crawl, for pipelines that
// want downstream stages to start before the crawl finishes. stats
// may be nil. If ctx is cancelled the channel closes early with the
// remaining tasks undelivered.
func (c *Crawler) CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []Task) <-chan Result {
	return pipeline.Map(ctx, stats, "crawl §4.2", c.cfg.Concurrency, pipeline.Emit(ctx, tasks),
		func(ctx context.Context, t Task) Result { return c.fetchOne(ctx, t) })
}

// fetchOne downloads and decodes one task with retries.
func (c *Crawler) fetchOne(ctx context.Context, t Task) (res Result) {
	ctx, sp := tracex.StartSpan(ctx, "crawl fetch")
	defer func() {
		sp.SetAttr("outcome", res.Outcome.String())
		sp.End()
	}()
	res = Result{Task: t}
	target, err := c.resolve(t.Link.URL)
	if err != nil {
		res.Outcome = OutcomeError
		res.Err = err
		return res
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := c.politeness(ctx, t.Link.Domain); err != nil {
			res.Outcome = OutcomeError
			res.Err = err
			return res
		}
		outcome, images, isPack, err := c.attempt(ctx, target)
		if err == nil {
			res.Outcome = outcome
			res.Images = images
			res.IsPack = isPack
			res.Err = nil
			return res
		}
		lastErr = err
		// Back off briefly before retrying transport errors.
		select {
		case <-ctx.Done():
			res.Outcome = OutcomeError
			res.Err = ctx.Err()
			return res
		case <-time.After(time.Duration(attempt+1) * c.cfg.BackoffBase):
		}
	}
	res.Outcome = OutcomeError
	res.Err = lastErr
	return res
}

// politeness enforces the per-host delay.
func (c *Crawler) politeness(ctx context.Context, host string) error {
	if c.cfg.PerHostDelay <= 0 {
		return nil
	}
	c.mu.Lock()
	now := time.Now()
	next := c.lastHost[host].Add(c.cfg.PerHostDelay)
	if next.Before(now) {
		next = now
	}
	c.lastHost[host] = next
	c.mu.Unlock()
	wait := time.Until(next)
	if wait <= 0 {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(wait):
		return nil
	}
}

// attempt performs a single HTTP round trip and decode. A non-nil
// error means "retryable transport failure"; definitive outcomes
// return err == nil.
func (c *Crawler) attempt(ctx context.Context, target string) (Outcome, []*imagex.Image, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return OutcomeError, nil, false, err
	}
	req.Header.Set("User-Agent", "ewhoring-study-crawler/1.0 (research)")
	resp, err := c.client.Do(req)
	if err != nil {
		return OutcomeError, nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound, http.StatusGone:
		return OutcomeNotFound, nil, false, nil
	case http.StatusUnauthorized, http.StatusForbidden:
		return OutcomeLoginRequired, nil, false, nil
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		return OutcomeSiteDown, nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return OutcomeError, nil, false, fmt.Errorf("crawler: unexpected status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		return OutcomeError, nil, false, err
	}
	ct := resp.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, hosting.ContentTypeSIMG):
		im, err := imagex.Decode(body)
		if err != nil {
			return OutcomeError, nil, false, fmt.Errorf("crawler: bad image payload: %w", err)
		}
		return OutcomeOK, []*imagex.Image{im}, false, nil
	case strings.HasPrefix(ct, hosting.ContentTypeZip):
		images, err := imagex.DecodePackZip(body)
		if err != nil {
			return OutcomeOK, nil, true, fmt.Errorf("crawler: bad pack payload: %w", err)
		}
		return OutcomeOK, images, true, nil
	default:
		// HTML or other: treat as an error page without content.
		return OutcomeNotFound, nil, false, nil
	}
}

// Stats aggregates crawl results.
type Stats struct {
	Tasks          int
	ByOutcome      map[Outcome]int
	ImagesFetched  int
	PacksFetched   int
	PackImages     int
	PreviewImages  int
	UniqueImages   int
	DuplicateCount int
}

// Summarize computes crawl statistics, including deduplication by
// exact perceptual hash pair (the paper: "After removing duplicates
// ... there were 53 948 unique files").
func Summarize(results []Result) Stats {
	s := Stats{Tasks: len(results), ByOutcome: make(map[Outcome]int)}
	seen := make(map[imagex.Hash128]struct{})
	for _, r := range results {
		s.ByOutcome[r.Outcome]++
		if r.Outcome != OutcomeOK {
			continue
		}
		if r.IsPack {
			s.PacksFetched++
			s.PackImages += len(r.Images)
		} else {
			s.PreviewImages += len(r.Images)
		}
		s.ImagesFetched += len(r.Images)
		for _, im := range r.Images {
			// The fused composite hash computes both components in one
			// traversal of the raster with no allocation.
			k := imagex.Hash128Of(im)
			if _, dup := seen[k]; dup {
				s.DuplicateCount++
			} else {
				seen[k] = struct{}{}
			}
		}
	}
	s.UniqueImages = len(seen)
	return s
}

// ErrNoTasks is returned by helpers that require at least one task.
var ErrNoTasks = errors.New("crawler: no tasks")

// TasksFromLinks builds tasks from classified links plus uniform
// provenance, skipping unknown-kind links.
func TasksFromLinks(links []urlx.Link, thread forum.ThreadID, post forum.PostID, author forum.ActorID) []Task {
	var out []Task
	for _, l := range links {
		if l.Kind == urlx.KindUnknown {
			continue
		}
		out = append(out, Task{Link: l, Thread: thread, Post: post, Author: author})
	}
	return out
}

// OutcomeCounts renders ByOutcome in a stable order for reports.
func (s Stats) OutcomeCounts() []string {
	keys := make([]int, 0, len(s.ByOutcome))
	for k := range s.ByOutcome {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", Outcome(k), s.ByOutcome[Outcome(k)]))
	}
	return out
}
