package synth

import (
	"context"

	"repro/internal/pipeline"
)

// The generation executor: world generation is a single sequential
// random walk (every rng draw happens on the walk goroutine, in
// program order), but most of its wall clock is spent on work that
// consumes no randomness — rendering model images, hashing them, and
// encoding uploads. Those are packaged as genJobs: the walk captures
// every rng-drawn parameter by value into a plan, submits the job,
// and moves on.
//
// A job has two halves with different ordering needs:
//
//   - render runs on any worker. It may only touch data that is
//     immutable for the job's lifetime (captured scalars, the frozen
//     parts of the world) plus the mutex-protected hosting sites,
//     whose maps make concurrent Puts to distinct paths commutative.
//   - apply runs on the applier goroutine in exact submission order.
//     Order-sensitive world mutations (reverse-index records, Wayback
//     captures, hashlist inserts — anything whose slice order
//     DeepEqual can see) go here, so the parallel path leaves the
//     world in the byte-for-byte state the sequential walk would.
//
// pipeline.Map provides both the worker pool and the order-preserving
// fan-in; with no runner attached (GenerateSequential, workers <= 1)
// World.do runs the job inline at its call site, which IS the
// sequential semantics.
type genJob struct {
	render func()
	apply  func()
}

// jobRunner drives genJobs through a pipeline.Map worker pool and an
// in-order applier.
type jobRunner struct {
	jobs chan genJob
	done chan struct{}
}

// startJobRunner launches the pool. The stage is anonymous (no span,
// no stats): per-generator tracing lives on the walk's child spans.
func startJobRunner(ctx context.Context, workers int) *jobRunner {
	r := &jobRunner{
		jobs: make(chan genJob, 4*workers),
		done: make(chan struct{}),
	}
	rendered := pipeline.Map(ctx, nil, "", workers, r.jobs,
		func(_ context.Context, j genJob) genJob {
			if j.render != nil {
				j.render()
			}
			return j
		})
	go func() {
		defer close(r.done)
		for j := range rendered {
			if j.apply != nil {
				j.apply()
			}
		}
	}()
	return r
}

// close ends the stream and blocks until every submitted job has been
// rendered and applied.
func (r *jobRunner) close() {
	close(r.jobs)
	<-r.done
}

// do schedules one generation job: render off-walk (pure compute plus
// commutative hosting puts), apply in submission order. Either half
// may be nil. Without a runner both halves run inline, immediately —
// the sequential reference behaviour.
func (w *World) do(render, apply func()) {
	if w.jobs == nil {
		if render != nil {
			render()
		}
		if apply != nil {
			apply()
		}
		return
	}
	w.jobs.jobs <- genJob{render: render, apply: apply}
}
