package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultx"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/pipeline"
	"repro/internal/reverse"
	"repro/internal/tracex"
	"repro/internal/urlx"
	"repro/internal/wayback"
)

// HTTPConfig configures an HTTPClient.
type HTTPConfig struct {
	// HostingURL is the base URL of the hosting-world server (no
	// trailing slash). Required for crawling and landing-page visits.
	HostingURL string
	// ReverseURL is the base URL of the reverse-image-search service.
	// Required for SearchImage/SearchHash.
	ReverseURL string
	// WaybackURL is the base URL of the Wayback availability service.
	// Required for SeenBefore.
	WaybackURL string

	// Crawl carries the fetch behaviour (concurrency, retries, backoff,
	// body cap). Crawl.PerHostDelay is the per-virtual-host rate limit.
	Crawl Config

	// RequestTimeout bounds every HTTP round trip (default 30s).
	RequestTimeout time.Duration
	// MaxRetries bounds re-attempts for reverse/wayback/visit lookups
	// after transport errors (default 2; crawl fetches retry per
	// Crawl.MaxRetries).
	MaxRetries int
	// BackoffBase is the deterministic backoff unit for those lookups:
	// attempt n sleeps n*BackoffBase (default 25ms), unless the failed
	// attempt carried a Retry-After hint — then the hint doubles per
	// attempt instead (see Backoff).
	BackoffBase time.Duration
	// MaxBackoff caps any single lookup retry sleep (default 2s).
	MaxBackoff time.Duration
	// MaxIdleConnsPerHost sizes the connection pool (default: the crawl
	// concurrency — the substrate is typically one real host).
	MaxIdleConnsPerHost int

	// Client overrides the underlying *http.Client (tests inject an
	// httptest server's client). The pool settings above are ignored
	// when set; RequestTimeout still applies.
	Client *http.Client
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	c.Crawl = c.Crawl.withDefaults()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = c.Crawl.Concurrency
	}
	return c
}

// HTTPClient is the crawler's network backend: it reaches the whole
// web substrate — the hosting world, the reverse image search and the
// Wayback archive — over real net/http, the way the paper's crawler
// reached imgur, TinEye and the Internet Archive. An in-process study
// talks to the world's data structures directly; an HTTP-backed study
// routes every substrate access through one of these, against servers
// such as cmd/ewserve.
//
// The client is built for sustained crawls: one pooled transport is
// shared by every request (connection reuse across the fetch, search
// and availability paths), per-virtual-host rate limiting spaces
// requests like the in-process crawler's politeness delay, retries are
// bounded with a deterministic linear backoff (no jitter — retry
// schedules must be reproducible), and every round trip carries a
// context timeout. Safe for concurrent use.
type HTTPClient struct {
	cfg     HTTPConfig
	http    *http.Client
	crawler *Crawler
	reverse *reverse.Client
	wayback *wayback.Client
}

// NewHTTPClient builds a client for the substrate at the configured
// base URLs.
func NewHTTPClient(cfg HTTPConfig) *HTTPClient {
	cfg = cfg.withDefaults()
	var hc *http.Client
	if cfg.Client != nil {
		cp := *cfg.Client // shallow copy so setting Timeout is local
		hc = &cp
	} else {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * cfg.MaxIdleConnsPerHost,
			MaxIdleConnsPerHost: cfg.MaxIdleConnsPerHost,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if hc.Timeout == 0 {
		hc.Timeout = cfg.RequestTimeout
	}
	h := &HTTPClient{
		cfg:     cfg,
		http:    hc,
		crawler: New(cfg.Crawl, hc, hosting.Resolver(cfg.HostingURL)),
	}
	if cfg.ReverseURL != "" {
		h.reverse = reverse.NewClient(cfg.ReverseURL, hc)
	}
	if cfg.WaybackURL != "" {
		h.wayback = wayback.NewClient(cfg.WaybackURL, hc)
	}
	return h
}

// Crawl fetches every task against the hosting server, in task order.
func (h *HTTPClient) Crawl(ctx context.Context, tasks []Task) []Result {
	return h.crawler.Crawl(ctx, tasks)
}

// CrawlStream is the channel form of Crawl: it plugs into the study's
// stage engine exactly like the in-process crawler's stream.
func (h *HTTPClient) CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []Task) <-chan Result {
	return h.crawler.CrawlStream(ctx, stats, tasks)
}

// retry runs fn up to 1+MaxRetries times with deterministic backoff
// between attempts — linear by default, or the server's own
// Retry-After hint (doubling, capped) when the failed attempt carried
// one. The whole retried lookup is one leaf span named name, so a
// trace attributes a slow remote cell to the specific substrate call
// that stalled — retries included; the span's "attempts" attr counts
// them.
func (h *HTTPClient) retry(ctx context.Context, name string, fn func(context.Context) error) (err error) {
	ctx, sp := tracex.StartSpan(ctx, name)
	attempts := 0
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.SetAttr("attempts", strconv.Itoa(attempts))
		sp.End()
	}()
	var lastErr error
	for attempt := 0; attempt <= h.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(Backoff(attempt-1, h.cfg.BackoffBase, h.cfg.MaxBackoff, RetryAfterHint(lastErr))):
			}
		}
		attempts++
		if lastErr = fn(ctx); lastErr == nil {
			return nil
		}
	}
	return lastErr
}

// SearchImage reverse-searches an image via the remote service.
func (h *HTTPClient) SearchImage(ctx context.Context, im *imagex.Image) ([]reverse.Match, error) {
	if h.reverse == nil {
		return nil, fmt.Errorf("crawler: no reverse service configured")
	}
	var out []reverse.Match
	err := h.retry(ctx, "reverse search", func(ctx context.Context) error {
		var err error
		out, err = h.reverse.Search(ctx, im)
		return err
	})
	return out, err
}

// SearchHash reverse-searches a precomputed composite hash.
func (h *HTTPClient) SearchHash(ctx context.Context, hash imagex.Hash128) ([]reverse.Match, error) {
	if h.reverse == nil {
		return nil, fmt.Errorf("crawler: no reverse service configured")
	}
	var out []reverse.Match
	err := h.retry(ctx, "reverse search", func(ctx context.Context) error {
		var err error
		out, err = h.reverse.SearchHash(ctx, hash)
		return err
	})
	return out, err
}

// SeenBefore asks the remote Wayback service whether the URL was
// captured strictly before the cutoff.
func (h *HTTPClient) SeenBefore(ctx context.Context, rawURL string, cutoff time.Time) (bool, error) {
	if h.wayback == nil {
		return false, fmt.Errorf("crawler: no wayback service configured")
	}
	var seen bool
	err := h.retry(ctx, "wayback lookup", func(ctx context.Context) error {
		var err error
		seen, err = h.wayback.SeenBefore(ctx, rawURL, cutoff)
		return err
	})
	return seen, err
}

// VisitKind fetches a domain's landing page from the hosting server
// and reports the site kind it advertises — the over-the-wire form of
// the snowball-sampling visit. The substrate's authoritative negatives
// — 502 (unregistered domain) and 503 (defunct site) — report
// (KindUnknown, false, nil), matching the in-process oracle. Any other
// failure (transport error, unexpected status, unparseable page) is
// retried on the deterministic backoff schedule and, if it persists,
// surfaces as a non-nil error alongside (KindUnknown, false) so
// callers can tell "the site said no" from "the lookup failed".
func (h *HTTPClient) VisitKind(ctx context.Context, domain string) (urlx.Kind, bool, error) {
	var kind urlx.Kind
	var ok bool
	err := h.retry(ctx, "visit landing", func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			h.cfg.HostingURL+"/"+domain+"/landing", nil)
		if err != nil {
			return err
		}
		resp, err := h.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusBadGateway, http.StatusServiceUnavailable:
			kind, ok = urlx.KindUnknown, false
			return nil
		default:
			return &StatusError{
				StatusCode: resp.StatusCode,
				RetryAfter: faultx.ParseRetryAfter(resp.Header.Get("Retry-After")),
				Msg:        fmt.Sprintf("crawler: landing page for %q returned status %d", domain, resp.StatusCode),
			}
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
			return fmt.Errorf("crawler: landing page for %q has content type %q", domain, resp.Header.Get("Content-Type"))
		}
		kind, ok = hosting.ParseLandingKind(body)
		if !ok {
			// Every substrate landing page carries the site-kind
			// marker; a page without one is a lookup failure, not an
			// authoritative negative.
			return fmt.Errorf("crawler: landing page for %q has no site-kind marker", domain)
		}
		return nil
	})
	if err != nil {
		return urlx.KindUnknown, false, err
	}
	return kind, ok, nil
}

// Close releases pooled connections.
func (h *HTTPClient) Close() {
	h.http.CloseIdleConnections()
}
