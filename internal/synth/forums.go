package synth

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/forum"
	"repro/internal/randx"
)

// forumState carries per-forum generation context.
type forumState struct {
	spec    forumSpec
	id      forum.ForumID
	isHF    bool
	rng     *randx.Rand
	actors  []forum.ActorID
	zipf    *randx.Zipf
	ewBoard forum.BoardID
	// ewCount tracks eWhoring posts per actor (drives other-board
	// volume and exchange-thread eligibility).
	ewCount map[forum.ActorID]int
	// monthBuckets index actors by the months their eWhoring window
	// covers, with parallel cumulative Zipf weights, so reply authors
	// can be sampled heavy-tailed AND time-consistent.
	monthBuckets map[int][]int
	bucketCum    map[int][]float64
	// hostThreads: per-board rolling background threads for
	// other-board posts.
	hostThreads map[forum.BoardID]forum.ThreadID
	hostReplies map[forum.ThreadID]int
}

// genForums builds every forum of Table 1.
func (w *World) genForums(rng *randx.Rand) {
	// Flagged models are distributed across free TOPs as they are
	// generated; build the queue once.
	var flaggedQueue []int
	for i, m := range w.Models {
		if m.Flagged >= 0 {
			flaggedQueue = append(flaggedQueue, i)
		}
	}
	w.flaggedQueue = flaggedQueue

	for _, spec := range paperForums {
		w.genForum(rng.SplitLabeled(spec.Name), spec)
	}
}

// genForum builds one forum: boards, actors, eWhoring threads,
// other-board activity and (for Hackforums) the Currency Exchange and
// Bragging Rights boards.
func (w *World) genForum(rng *randx.Rand, spec forumSpec) {
	st := &forumState{
		spec:        spec,
		rng:         rng,
		isHF:        spec.Name == "Hackforums",
		ewCount:     make(map[forum.ActorID]int),
		hostThreads: make(map[forum.BoardID]forum.ThreadID),
		hostReplies: make(map[forum.ThreadID]int),
	}
	st.id = w.Store.AddForum(spec.Name)
	w.Forums = append(w.Forums, st.id)

	var catBoards []forum.BoardID
	if st.isHF {
		w.HF = st.id
		st.ewBoard = w.Store.AddBoard(st.id, "eWhoring", "Money")
		w.HFEWhoring = st.ewBoard
		w.HFCurrency = w.Store.AddBoard(st.id, "Currency Exchange", "Market")
		w.HFBragging = w.Store.AddBoard(st.id, "Bragging Rights", "Money")
		w.HFLounge = w.Store.AddBoard(st.id, "The Lounge", "Lounge")
		for _, cat := range hfCategories {
			catBoards = append(catBoards, w.Store.AddBoard(st.id, cat+" Central", cat))
		}
	} else {
		st.ewBoard = w.Store.AddBoard(st.id, "General", "Common")
		catBoards = []forum.BoardID{st.ewBoard}
	}

	// Actor pool with activity windows.
	nActors := w.Config.scaled(spec.Actors, 25)
	start := spec.FirstPost
	spanDays := int(datasetEnd.Sub(start).Hours() / 24)
	if spanDays < 60 {
		spanDays = 60
	}
	for i := 0; i < nActors; i++ {
		// Registrations skew towards later years (the forums grew over
		// the decade), which also tilts aggregate proof-platform
		// counts towards Amazon Gift Cards, as in Figure 3.
		regOffset := int(float64(spanDays) * math.Sqrt(rng.Float64()))
		reg := start.AddDate(0, 0, regOffset-30)
		ew0 := reg.AddDate(0, 0, int(rng.Exp(120)))
		if ew0.Before(start) {
			ew0 = start.AddDate(0, 0, rng.Intn(30))
		}
		if ew0.After(datasetEnd) {
			ew0 = datasetEnd.AddDate(0, 0, -rng.Intn(200)-1)
		}
		// Clamping can push the eWhoring start before registration for
		// late registrants; registration always precedes activity.
		if ew0.Before(reg) {
			reg = ew0.AddDate(0, 0, -rng.Intn(60)-1)
		}
		a := w.Store.AddActor(st.id, fmt.Sprintf("%s_user%05d", strings.ToLower(spec.Name[:2]), i), reg)
		ew1 := ew0.AddDate(0, 0, 30+int(rng.Exp(220)))
		if ew1.After(datasetEnd) {
			ew1 = datasetEnd
		}
		firstAct := ew0.AddDate(0, 0, -int(rng.Exp(165)))
		if firstAct.Before(reg) {
			firstAct = reg
		}
		// Heavier eWhoring careers (longer windows) taper off sooner
		// after — Table 8's after-days fall from 474 to ~140 across
		// buckets.
		windowDays := ew1.Sub(ew0).Hours() / 24
		afterMean := 480 * 180 / (windowDays + 180)
		lastAct := ew1.AddDate(0, 0, int(rng.Exp(afterMean)))
		if lastAct.After(datasetEnd) {
			lastAct = datasetEnd
		}
		st.actors = append(st.actors, a)
		w.Actors[a] = &ActorTruth{
			ID: a, Registered: reg,
			EwStart: ew0, EwEnd: ew1,
			FirstActivity: firstAct, LastActivity: lastAct,
		}
	}
	st.zipf = randx.NewZipf(rng, len(st.actors), 1.02)
	st.buildMonthBuckets(w)

	// eWhoring threads.
	nThreads := w.Config.scaled(spec.Threads, 4)
	nPosts := w.Config.scaled(spec.Posts, nThreads*2)
	meanReplies := float64(nPosts)/float64(nThreads) - 1
	if meanReplies < 1 {
		meanReplies = 1
	}
	topsLeft := w.Config.scaled(spec.TOPs, 0)
	if spec.TOPs > 0 && topsLeft == 0 {
		topsLeft = 1
	}
	for t := 0; t < nThreads; t++ {
		kind := st.pickKind(t, nThreads, &topsLeft)
		w.genEWThread(st, kind, meanReplies)
	}

	// Other-board activity: full interest profiles on Hackforums,
	// light General-board activity elsewhere (enough to measure days
	// before/after eWhoring).
	w.genOtherActivity(st, catBoards)

	if st.isHF {
		w.genExchange(st)
	}
}

// pickKind decides a thread's kind, honouring the forum's TOP quota.
func (st *forumState) pickKind(t, total int, topsLeft *int) ThreadKind {
	remaining := total - t
	if *topsLeft > 0 && st.rng.Float64() < float64(*topsLeft)/float64(remaining) {
		*topsLeft--
		return KindTOP
	}
	switch {
	case st.rng.Bool(0.30):
		return KindRequest
	case st.rng.Bool(0.07):
		return KindTutorial
	case st.rng.Bool(0.028):
		return KindEarnings
	default:
		return KindDiscussion
	}
}

// genEWThread creates one eWhoring-related thread of the given kind.
func (w *World) genEWThread(st *forumState, kind ThreadKind, meanReplies float64) {
	rng := st.rng
	starter := st.actors[st.zipf.Next()]
	at := w.Actors[starter]
	span := int(at.EwEnd.Sub(at.EwStart).Hours() / 24)
	if span < 1 {
		span = 1
	}
	created := at.EwStart.AddDate(0, 0, rng.Intn(span))
	if created.Before(st.spec.FirstPost) {
		created = st.spec.FirstPost
	}
	if created.After(datasetEnd) {
		created = datasetEnd
	}

	var heading, body string
	truth := &ThreadTruth{Kind: kind}
	board := st.ewBoard
	replyScale := 1.0
	switch kind {
	case KindTOP:
		if rng.Bool(0.12) {
			// Some sharers avoid the obvious keywords — the hybrid
			// classifier's misses come from these.
			heading = randx.Pick(rng, topAmbiguousHeadings)
		} else {
			heading = fillHeading(rng, randx.Pick(rng, topHeadings))
		}
		var top *TOPTruth
		body, top = w.genTOPContent(st, created)
		truth.TOP = top
		replyScale = 1.7
	case KindRequest:
		heading = fillHeading(rng, randx.Pick(rng, requestHeadings))
		body = fillBody(rng, randx.Pick(rng, requestBodies))
		replyScale = 0.55
	case KindTutorial:
		heading = fillHeading(rng, randx.Pick(rng, tutorialHeadings))
		body = fillBody(rng, randx.Pick(rng, tutorialBodies))
		replyScale = 1.4
	case KindEarnings:
		heading = fillHeading(rng, randx.Pick(rng, earningsHeadings))
		if st.isHF && rng.Bool(0.5) {
			board = w.HFBragging
			if !strings.Contains(strings.ToLower(heading), "ewhor") {
				heading += " - ewhoring"
			}
		}
		body = fmt.Sprintf(randx.Pick(rng, earningsBodies), w.genProofLink(st, starter, created, nil))
		replyScale = 1.2
	default:
		if rng.Bool(0.15) {
			// Discussions that talk packs without offering any — the
			// classifier's false positives come from these.
			heading = fillHeading(rng, randx.Pick(rng, discussionPackyHeadings))
		} else {
			heading = fillHeading(rng, randx.Pick(rng, discussionHeadings))
		}
		body = fillBody(rng, randx.Pick(rng, discussionBodies))
	}
	// Non-Hackforums threads were selected by heading keyword; make
	// sure the heading carries it.
	if st.spec.KeywordHeadings && !strings.Contains(strings.ToLower(heading), "ewhor") {
		if rng.Bool(0.5) {
			heading = "ewhoring: " + heading
		} else {
			heading += " (e-whoring)"
		}
	}

	tid := w.Store.AddThread(board, starter, heading, body, created)
	w.Truth[tid] = truth
	w.EWhoring[st.id] = append(w.EWhoring[st.id], tid)
	st.ewCount[starter]++

	// Replies.
	nReplies := int(rng.LogNormal(0, 1.0) * meanReplies * replyScale)
	if nReplies > 2500 {
		nReplies = 2500
	}
	tm := created
	var postIDs []forum.PostID
	postIDs = append(postIDs, w.Store.FirstPost(tid).ID)
	for r := 0; r < nReplies; r++ {
		tm = tm.Add(time.Duration(rng.Exp(30)*float64(time.Hour)) + time.Minute)
		if tm.After(datasetEnd) {
			tm = datasetEnd
		}
		author := st.pickAuthor(w, tm)
		var quotes forum.PostID
		if rng.Bool(0.25) {
			quotes = postIDs[rng.Intn(len(postIDs))]
		}
		body := replyBody(rng, kind, truth)
		// Earnings threads accumulate proof posts from participants.
		if kind == KindEarnings && rng.Bool(0.22) {
			body = "my proof: " + w.genProofLink(st, author, tm, nil) + " earn while you sleep"
		}
		pid := w.Store.AddReply(tid, author, body, tm, quotes)
		postIDs = append(postIDs, pid)
		st.ewCount[author]++
	}
	// Record proof posts that referenced this thread retroactively
	// (genProofLink stores thread 0 until now).
	w.fixupProofThreads(tid, postIDs)
}

func monthIndex(t time.Time) int {
	return t.Year()*12 + int(t.Month()) - 1
}

// buildMonthBuckets indexes actors by the months their eWhoring
// window covers, precomputing cumulative Zipf weights per bucket.
func (st *forumState) buildMonthBuckets(w *World) {
	st.monthBuckets = make(map[int][]int)
	for i, a := range st.actors {
		at := w.Actors[a]
		for m := monthIndex(at.EwStart); m <= monthIndex(at.EwEnd); m++ {
			st.monthBuckets[m] = append(st.monthBuckets[m], i)
		}
	}
	st.bucketCum = make(map[int][]float64, len(st.monthBuckets))
	for m, idxs := range st.monthBuckets {
		cum := make([]float64, len(idxs))
		sum := 0.0
		for k, i := range idxs {
			sum += 1 / math.Pow(float64(i+1), 1.02)
			cum[k] = sum
		}
		st.bucketCum[m] = cum
	}
}

// pickAuthor samples a reply author whose eWhoring window covers the
// post time, heavy-tailed by the actor's Zipf rank — otherwise the
// most active actors' eWhoring spans would swallow the whole dataset
// and the before / during / after analyses of §6 would degenerate.
func (st *forumState) pickAuthor(w *World, tm time.Time) forum.ActorID {
	bucket := st.monthBuckets[monthIndex(tm)]
	if len(bucket) == 0 {
		return st.actors[st.zipf.Next()]
	}
	cum := st.bucketCum[monthIndex(tm)]
	x := st.rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return st.actors[bucket[lo]]
}

// replyBody picks a reply body; flagged TOPs occasionally attract the
// paper's age-concern replies.
func replyBody(rng *randx.Rand, kind ThreadKind, truth *ThreadTruth) string {
	if kind == KindTOP && truth.TOP != nil && truth.TOP.Flagged && rng.Bool(0.08) {
		return randx.Pick(rng, ageConcernReplies)
	}
	return randx.Pick(rng, replyBodies)
}

// fillBody instantiates a body template that may contain one %s
// (model name).
func fillBody(rng *randx.Rand, tmpl string) string {
	if strings.Contains(tmpl, "%s") {
		return fmt.Sprintf(tmpl, randx.Pick(rng, modelNames))
	}
	return tmpl
}

// genOtherActivity generates non-eWhoring posts so that actors have
// measurable activity before and after their eWhoring phase, and (on
// Hackforums) interest profiles across board categories.
func (w *World) genOtherActivity(st *forumState, catBoards []forum.BoardID) {
	rng := st.rng
	byCat := make(map[string]forum.BoardID)
	for _, b := range catBoards {
		byCat[w.Store.Board(b).Category] = b
	}
	for _, a := range st.actors {
		ew := st.ewCount[a]
		if ew == 0 {
			continue
		}
		at := w.Actors[a]
		pct := 0.12 + 0.25*rng.Float64()
		other := int(float64(ew) * (1 - pct) / pct)
		if other > 600 {
			other = 600
		}
		if other < 1 {
			other = 1
		}
		if !st.isHF {
			// Light activity: a couple of posts before and after.
			if other > 4 {
				other = 4
			}
		}
		for i := 0; i < other; i++ {
			phase := rng.Float64()
			var t0, t1 time.Time
			var mix map[string]float64
			switch {
			case phase < 0.40:
				t0, t1, mix = at.FirstActivity, at.EwStart, interestBefore
			case phase < 0.75:
				t0, t1, mix = at.EwStart, at.EwEnd, interestDuring
			default:
				t0, t1, mix = at.EwEnd, at.LastActivity, interestAfter
			}
			span := int(t1.Sub(t0).Hours() / 24)
			if span < 1 {
				span = 1
			}
			tm := t0.AddDate(0, 0, rng.Intn(span))
			var board forum.BoardID
			if st.isHF && rng.Bool(0.10) {
				board = w.HFLounge // excluded from interest analysis
			} else if st.isHF {
				board = byCat[pickCategory(rng, mix)]
			} else {
				board = st.ewBoard
			}
			if board == 0 {
				board = catBoards[0]
			}
			w.postBackground(st, board, a, tm)
		}
	}
}

// pickCategory samples a category from an interest mix.
func pickCategory(rng *randx.Rand, mix map[string]float64) string {
	weights := make([]float64, len(hfCategories))
	for i, c := range hfCategories {
		weights[i] = mix[c]
	}
	return hfCategories[rng.WeightedPick(weights)]
}

// postBackground appends a post to the rolling host thread of a
// board, starting a new host thread every 50 replies. Background
// posts never mention eWhoring in headings (they must not leak into
// the keyword selection).
func (w *World) postBackground(st *forumState, board forum.BoardID, a forum.ActorID, tm time.Time) {
	tid, ok := st.hostThreads[board]
	if !ok || st.hostReplies[tid] >= 50 {
		heading := fmt.Sprintf("%s general discussion #%d",
			w.Store.Board(board).Category, len(st.hostReplies)+1)
		tid = w.Store.AddThread(board, a, heading, "welcome to the thread", tm)
		w.Truth[tid] = &ThreadTruth{Kind: KindBackground}
		st.hostThreads[board] = tid
		st.hostReplies[tid] = 0
		return
	}
	bodies := []string{
		"nice one", "agreed", "anyone tried this?", "lol", "interesting topic",
		"posting to follow", "good point", "what build do you use?",
	}
	w.Store.AddReply(tid, a, randx.Pick(st.rng, bodies), tm, 0)
	st.hostReplies[tid]++
}
