package core

// The study as an artefact graph. Every named output of the paper —
// Table 1, the §4.1 classifier, the crawl, Table 5 provenance, the
// §5/§6 analyses — is one node of a DAG registered here; Run evaluates
// the whole graph and Compute evaluates a selection, so callers pay
// only for the artefacts they ask for. Each node's memo key is the
// projection of the study options onto the parameters that actually
// determine its value: worker counts and crawl concurrency are
// deliberately excluded (they change timings, never results — the
// determinism invariant DESIGN.md §3 pins), so a shared memo store
// reuses an already-crawled substrate across runs that differ only in
// those knobs.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/artefact"
	"repro/internal/crawler"
	"repro/internal/earnings"
	"repro/internal/forum"
	"repro/internal/logx"
	"repro/internal/nsfv"
	"repro/internal/photodna"
	"repro/internal/pipeline"
	"repro/internal/urlx"
)

// Artefact node names — the study's stable artefact identities.
const (
	ArtefactSelect     = "select"     // §3 thread selection
	ArtefactClassifier = "classifier" // §4.1 TOP classifier
	ArtefactTable1     = "table1"     // Table 1 forum overview (with TOPs)
	ArtefactLinks      = "links"      // §4.2 URL extraction (Tables 3/4)
	ArtefactCrawl      = "crawl"      // §4.2 crawl
	ArtefactPhotoDNA   = "photodna"   // §4.3 hashlist gate
	ArtefactNSFV       = "nsfv"       // §4.4 NSFV split
	ArtefactProvenance = "provenance" // §4.5 reverse search (Tables 5/6)
	ArtefactEarnings   = "earnings"   // §5 financial analysis (Figures 2/3)
	ArtefactActors     = "actors"     // §6 actor analysis (Tables 8-10, Figures 4/5)
	ArtefactExchange   = "exchange"   // §5.3 currency exchange (Table 7)
)

// Artefacts lists every artefact name in canonical (pipeline) order.
func Artefacts() []string {
	return []string{
		ArtefactSelect, ArtefactClassifier, ArtefactTable1,
		ArtefactLinks, ArtefactCrawl, ArtefactPhotoDNA, ArtefactNSFV,
		ArtefactProvenance, ArtefactEarnings, ArtefactActors, ArtefactExchange,
	}
}

// SpanDeps returns the study's blocking-dependency graph in trace-span
// naming: "node X" depends on "node Y" per the artefact registry, and
// the root "node select" additionally blocks on "synth" (world
// generation precedes every evaluation, and its span is emitted by
// whoever generates — the service's world cache or a study
// constructor). This is the deps input for tracex.CriticalPath.
func SpanDeps() map[string][]string {
	raw := studyGraph.Deps()
	out := make(map[string][]string, len(raw))
	for name, deps := range raw {
		spanDeps := make([]string, 0, len(deps)+1)
		for _, d := range deps {
			spanDeps = append(spanDeps, "node "+d)
		}
		if name == ArtefactSelect {
			spanDeps = append(spanDeps, "synth")
		}
		out["node "+name] = spanDeps
	}
	return out
}

// artefactAliases maps the paper's table/figure names onto the
// artefact nodes that produce them, so callers can ask for "table5"
// and get the provenance subgraph.
var artefactAliases = map[string]string{
	"overview": ArtefactTable1,
	"table1":   ArtefactTable1,
	"table3":   ArtefactLinks,
	"table4":   ArtefactLinks,
	"table5":   ArtefactProvenance,
	"table6":   ArtefactProvenance,
	"table7":   ArtefactExchange,
	"table8":   ArtefactActors,
	"table9":   ArtefactActors,
	"table10":  ArtefactActors,
	"figure2":  ArtefactEarnings,
	"figure3":  ArtefactEarnings,
	"figure4":  ArtefactActors,
	"figure5":  ArtefactActors,
}

// ResolveArtefacts maps artefact names and table/figure aliases to
// deduplicated artefact names in canonical order. Names are
// normalized (trimmed, lowercased) first, so "Table5" from a CLI
// -only list resolves like "table5". An empty input resolves to
// every artefact; unknown names are errors.
func ResolveArtefacts(names ...string) ([]string, error) {
	all := Artefacts()
	if len(names) == 0 {
		return all, nil
	}
	valid := make(map[string]bool, len(all))
	for _, a := range all {
		valid[a] = true
	}
	want := make(map[string]bool, len(names))
	for _, name := range names {
		a := strings.ToLower(strings.TrimSpace(name))
		if alias, ok := artefactAliases[a]; ok {
			a = alias
		}
		if !valid[a] {
			return nil, fmt.Errorf("core: unknown artefact %q (artefacts: %v)", name, all)
		}
		want[a] = true
	}
	out := make([]string, 0, len(want))
	for _, a := range all {
		if want[a] {
			out = append(out, a)
		}
	}
	return out, nil
}

// worldKey is the canonical identity of the generated world: the part
// of the request the §3 selection depends on.
func (s *Study) worldKey() string {
	c := s.Opts.Synth.Canonical()
	return "seed=" + strconv.FormatUint(c.Seed, 10) +
		"|scale=" + strconv.FormatFloat(c.Scale, 'g', -1, 64) +
		"|img=" + strconv.Itoa(c.ImageSize) +
		"|skip=" + strconv.FormatBool(c.SkipImages)
}

// studyKey extends worldKey with every semantic study option — the
// parameters that can change any artefact's value. Workers and
// CrawlConcurrency are excluded on purpose: they size goroutine
// pools, and the determinism invariant guarantees they never move a
// result.
func (s *Study) studyKey() string {
	key := s.worldKey() +
		"|ann=" + strconv.Itoa(s.Opts.AnnotationSize) +
		"|train=" + strconv.FormatFloat(s.Opts.TrainFrac, 'g', -1, 64) +
		"|pack=" + strconv.Itoa(s.Opts.ImagesPerPack)
	if s.Opts.Faults != "" {
		// Fault injection changes what the crawl can fetch, so it is
		// part of every artefact's identity. Fault-free keys stay
		// byte-identical to the pre-faultx era.
		key += "|faults=" + s.Opts.Faults
	}
	return key
}

// Composite node values. Artefact values must be self-contained —
// downstream nodes read them instead of study state, so a value
// memoized by one study instance feeds another's evaluation without
// recomputing anything (the whitelist a snowball run expanded travels
// with the links value, not on the study).
type (
	linksValue struct {
		links     LinkExtraction
		whitelist *urlx.Whitelist
	}
	crawlValue struct {
		results []crawler.Result
		stats   crawler.Stats
	}
	photodnaValue struct {
		safe    []SafeImage
		summary photodna.ActionSummary
		reports []photodna.MatchReport
	}
	earningsValue struct {
		res     EarningsResult
		reports []photodna.MatchReport
	}
)

// studyGraph is the artefact DAG over a *Study. Nodes call the same
// stage methods RunSequential does, in the same per-item order, so a
// full evaluation is bit-identical to the sequential reference — the
// equivalence tests and the golden seed-77 report pin it.
var studyGraph = newStudyGraph()

func newStudyGraph() *artefact.Graph[*Study] {
	g := artefact.NewGraph[*Study]()
	worldKey := func(s *Study) string { return s.worldKey() }
	studyKey := func(s *Study) string { return s.studyKey() }

	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactSelect,
		Key:  worldKey,
		Compute: func(_ context.Context, s *Study, _ artefact.Deps) (any, error) {
			return s.SelectEWhoring(), nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactClassifier,
		Deps: []string{ArtefactSelect},
		Key:  studyKey,
		Compute: func(_ context.Context, s *Study, d artefact.Deps) (any, error) {
			return s.TrainAndExtract(artefact.Get[[]forum.ThreadID](d, ArtefactSelect))
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactTable1,
		Deps: []string{ArtefactSelect, ArtefactClassifier},
		Key:  studyKey,
		Compute: func(_ context.Context, s *Study, d artefact.Deps) (any, error) {
			cls := artefact.Get[ClassifierResult](d, ArtefactClassifier)
			rows := s.ForumOverview(artefact.Get[[]forum.ThreadID](d, ArtefactSelect))
			for i := range rows {
				rows[i].TOPs = cls.TOPsByForum[rows[i].Forum]
			}
			return rows, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactLinks,
		Deps: []string{ArtefactClassifier},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			cls := artefact.Get[ClassifierResult](d, ArtefactClassifier)
			links := s.ExtractLinks(ctx, cls.Extract.TOPs)
			// The snowball expansion mutated s.Whitelist; snapshot it
			// into the value so the earnings node (and any study that
			// receives this value from memo) classifies against the
			// expanded list, exactly as the sequential order does.
			return linksValue{links: links, whitelist: s.Whitelist}, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactCrawl,
		Deps: []string{ArtefactLinks},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			lv := artefact.Get[linksValue](d, ArtefactLinks)
			results := pipeline.Collect(s.backend.CrawlStream(ctx, s.stats, lv.links.Tasks))
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return crawlValue{results: results, stats: crawler.Summarize(results)}, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactPhotoDNA,
		Deps: []string{ArtefactCrawl},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			cv := artefact.Get[crawlValue](d, ArtefactCrawl)
			// Hash and match under a worker pool; fold reports and the
			// safe set in task order (Map preserves input order), so
			// the hotline ends in the sequential state.
			hotline := photodna.NewHotline()
			var safe []SafeImage
			outcomes := pipeline.Map(ctx, s.stats, "photodna §4.3", s.Opts.Workers,
				pipeline.Emit(ctx, cv.results),
				func(ctx context.Context, r crawler.Result) matchOutcome { return s.matchResult(ctx, r) })
			for o := range outcomes {
				for _, rep := range o.reports {
					hotline.Report(rep)
				}
				safe = append(safe, o.safe...)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return photodnaValue{safe: safe, summary: hotline.Summarize(), reports: hotline.Reports()}, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactNSFV,
		Deps: []string{ArtefactPhotoDNA},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			pv := artefact.Get[photodnaValue](d, ArtefactPhotoDNA)
			nres, err := s.classifyNSFVConcurrent(ctx, pv.safe)
			if err != nil {
				return nil, err
			}
			return nres, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactProvenance,
		Deps: []string{ArtefactNSFV},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			return s.provenanceConcurrent(ctx, artefact.Get[NSFVResult](d, ArtefactNSFV))
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactEarnings,
		// The §5 analysis classifies links against the post-snowball
		// whitelist, so it depends on the links artefact even though
		// it shares no tasks with the image branch — the dependency
		// that keeps it bit-identical to the sequential order.
		Deps: []string{ArtefactSelect, ArtefactLinks},
		Key:  studyKey,
		Compute: func(ctx context.Context, s *Study, d artefact.Deps) (any, error) {
			ew := artefact.Get[[]forum.ThreadID](d, ArtefactSelect)
			lv := artefact.Get[linksValue](d, ArtefactLinks)
			hotline := photodna.NewHotline()
			res := s.analyzeEarningsWith(ctx, ew, lv.whitelist, hotline)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return earningsValue{res: res, reports: hotline.Reports()}, nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactActors,
		Deps: []string{ArtefactSelect, ArtefactClassifier, ArtefactEarnings},
		Key:  studyKey,
		Compute: func(_ context.Context, s *Study, d artefact.Deps) (any, error) {
			ew := artefact.Get[[]forum.ThreadID](d, ArtefactSelect)
			cls := artefact.Get[ClassifierResult](d, ArtefactClassifier)
			ev := artefact.Get[earningsValue](d, ArtefactEarnings)
			return s.AnalyzeActors(ew, cls.Extract.TOPs, ev.res.Proofs), nil
		},
	})
	g.MustRegister(artefact.Node[*Study]{
		Name: ArtefactExchange,
		Deps: []string{ArtefactActors},
		Key:  studyKey,
		Compute: func(_ context.Context, s *Study, d artefact.Deps) (any, error) {
			return s.ExchangeAnalysis(artefact.Get[ActorAnalysis](d, ArtefactActors).Profiles), nil
		},
	})
	return g
}

// classifyNSFVConcurrent is ClassifyNSFV under a worker pool: verdicts
// fan out, the split folds in input order, so the result is identical.
func (s *Study) classifyNSFVConcurrent(ctx context.Context, safe []SafeImage) (NSFVResult, error) {
	clf := nsfv.New()
	classed := pipeline.Map(ctx, s.stats, "nsfv §4.4", s.Opts.Workers,
		pipeline.Emit(ctx, safe),
		func(_ context.Context, si SafeImage) nsfvClass {
			switch {
			case si.IsPack:
				return nsfvClass{si, classPack}
			case clf.IsSFV(si.Image):
				return nsfvClass{si, classSFV}
			default:
				return nsfvClass{si, classPreview}
			}
		})
	var out NSFVResult
	for c := range classed {
		switch c.class {
		case classPack:
			out.PackImages = append(out.PackImages, c.si)
		case classSFV:
			out.SFV = append(out.SFV, c.si)
		default:
			out.Previews = append(out.Previews, c.si)
		}
	}
	if err := ctx.Err(); err != nil {
		return NSFVResult{}, err
	}
	return out, nil
}

// provenanceConcurrent is Provenance under a worker pool: the
// reverse searches fan out, the fold consumes outcomes in the
// sequential order (sampled pack images first, previews second).
func (s *Study) provenanceConcurrent(ctx context.Context, n NSFVResult) (ProvenanceResult, error) {
	var items []provItem
	for _, si := range samplePackImages(n.PackImages, s.Opts.ImagesPerPack) {
		items = append(items, provItem{si, true})
	}
	for _, si := range n.Previews {
		items = append(items, provItem{si, false})
	}
	searched := pipeline.Map(ctx, s.stats, "reverse §4.5", s.Opts.Workers,
		pipeline.Emit(ctx, items),
		func(ctx context.Context, it provItem) provSearched {
			return provSearched{it.pack, s.searchImage(ctx, it.si)}
		})
	fold := newProvFold()
	for o := range searched {
		if o.pack {
			fold.addPack(o.out)
		} else {
			fold.addPreview(o.out)
		}
	}
	if err := ctx.Err(); err != nil {
		return ProvenanceResult{}, err
	}
	return fold.finish(s), nil
}

// UseMemo attaches a shared artefact memo store: node values memoize
// into it under their canonical keys, so later runs — this study's or
// another study's with overlapping semantics — reuse them instead of
// recomputing. Must be set before the first Run or Compute; without
// it the study memoizes into a private store, so reuse stops at the
// study boundary.
//
// A study that receives memoized values never executes the
// corresponding stage methods, so side effects those methods leave on
// the study (the trained Hybrid, the snowball-expanded Whitelist) may
// be absent — everything downstream nodes need travels inside the
// values themselves. Mixing graph evaluation with direct stage-method
// calls on the same study is not supported.
func (s *Study) UseMemo(store *artefact.Store) {
	s.memo = store
}

// Compute evaluates only the named artefacts (plus their transitive
// dependencies) and returns a partial Results holding every field the
// evaluation produced. Names may be artefact names or table/figure
// aliases ("table5", "figure2"); an empty list computes everything.
// Unlike Run, Compute does not release the study's backend — call
// Close when done — so a study can serve any number of selective
// computations; repeated calls are idempotent and answered from the
// study's memo (private, or the shared store given to UseMemo).
func (s *Study) Compute(ctx context.Context, names ...string) (*Results, error) {
	arts, err := ResolveArtefacts(names...)
	if err != nil {
		return nil, err
	}
	s.stats = pipeline.NewStats()
	vals, err := s.evaluate(ctx, arts)
	if err != nil {
		return nil, err
	}
	res := &Results{}
	fillResults(res, vals)
	return res, nil
}

// evaluate runs the artefact graph over this study, recording one
// stage per resolved node into the study's pipeline stats. Values
// land in the shared memo store when one is attached, otherwise in
// the study's private store — either way evaluation is idempotent:
// a node computes at most once per semantic key, however many times
// Run or Compute ask for it.
func (s *Study) evaluate(ctx context.Context, arts []string) (map[string]any, error) {
	st := s.stats
	lg := logx.FromContext(ctx)
	opts := artefact.EvalOptions{Observe: func(ev artefact.Event) {
		busy := ev.Wall
		if ev.Memoized {
			busy = 0 // the value came from memo; nothing was computed
		}
		st.Record("node "+ev.Node, 1, 1, 1, ev.Wall, busy)
		// The context logger carries the request/run ids the service
		// bound upstream, so each node event logs under the request
		// that caused it (no-op when no logger is bound).
		lg.Debug("artefact node",
			"node", ev.Node, "memoized", ev.Memoized, "wall_ms", ev.Wall.Milliseconds())
	}}
	store := s.memo
	if store == nil {
		store = s.localMemo
	}
	return studyGraph.Evaluate(ctx, s, store, opts, arts...)
}

// fillResults copies evaluated artefact values into their Results
// fields. Only evaluated artefacts are filled; the rest stay zero.
func fillResults(res *Results, vals map[string]any) {
	for name, v := range vals {
		switch name {
		case ArtefactSelect:
			res.EWhoringThreads = v.([]forum.ThreadID)
		case ArtefactClassifier:
			res.Classifier = v.(ClassifierResult)
		case ArtefactTable1:
			res.Table1 = v.([]ForumOverviewRow)
		case ArtefactLinks:
			res.Links = v.(linksValue).links
		case ArtefactCrawl:
			res.CrawlStats = v.(crawlValue).stats
		case ArtefactPhotoDNA:
			res.PhotoDNA = v.(photodnaValue).summary
		case ArtefactNSFV:
			res.NSFV = v.(NSFVResult)
		case ArtefactProvenance:
			res.Provenance = v.(ProvenanceResult)
		case ArtefactEarnings:
			res.Earnings = v.(earningsValue).res
		case ArtefactActors:
			res.Actors = v.(ActorAnalysis)
		case ArtefactExchange:
			res.Table7 = v.(earnings.ExchangeTable)
		}
	}
}
