// Provenance: the §4 image-provenance pipeline in detail, driven
// manually over live HTTP — select threads, classify TOPs, extract
// and crawl links, gate through PhotoDNA, classify NSFV, and
// reverse-search the survivors to find where pack images come from.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	study := core.NewStudy(core.Options{
		Synth: synth.Config{Seed: 7, Scale: 0.03},
	})
	defer study.Close()

	ew := study.SelectEWhoring()
	fmt.Printf("selected %d eWhoring threads\n", len(ew))

	cls, err := study.TrainAndExtract(ew)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid classifier: P=%.2f R=%.2f → %d TOPs\n",
		cls.Metrics.Precision(), cls.Metrics.Recall(), len(cls.Extract.TOPs))

	links := study.ExtractLinks(ctx, cls.Extract.TOPs)
	fmt.Printf("link extraction: %d whitelisted links from %d TOPs\n",
		len(links.Tasks), links.ThreadsWithLinks)
	fmt.Println("top image-sharing sites:")
	for i, dc := range links.ImageSharing {
		if i == 5 {
			break
		}
		fmt.Printf("  %-20s %d\n", dc.Domain, dc.Count)
	}

	results := study.CrawlLinks(ctx, links.Tasks)
	st := crawler.Summarize(results)
	fmt.Printf("crawl: %v\n", st.OutcomeCounts())
	fmt.Printf("downloaded %d images (%d packs)\n", st.ImagesFetched, st.PacksFetched)

	safe, pdna := study.FilterAbuse(ctx, results)
	fmt.Printf("PhotoDNA: %d matches reported and deleted; %s\n", pdna.Matches, pdna.String())

	nsfvRes := study.ClassifyNSFV(safe)
	fmt.Printf("NSFV: %d previews, %d safe-for-viewing\n",
		len(nsfvRes.Previews), len(nsfvRes.SFV))

	prov := study.Provenance(ctx, nsfvRes)
	fmt.Printf("reverse search: packs %d/%d matched (%d seen before posting)\n",
		prov.Packs.Matched, prov.Packs.Total, prov.Packs.SeenBefore)
	fmt.Printf("matched domains: %d; zero-match packs: %d\n",
		len(prov.Domains), prov.ZeroMatch)
	fmt.Println("McAfee's top categories for those domains:")
	for i, row := range prov.Table6["McAfee"] {
		if i == 5 {
			break
		}
		fmt.Printf("  %-24s %4d  (%.1f%% cum.)\n", row.Tag, row.Domains, row.CumPct)
	}
}
