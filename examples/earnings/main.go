// Earnings: the §5 financial analysis — locate proof-of-earnings
// images, OCR them into structured proofs, convert historical
// currencies to USD, and chart the platform shift from PayPal to
// Amazon Gift Cards.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/earnings"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	study := core.NewStudy(core.Options{
		Synth: synth.Config{Seed: 55, Scale: 0.04},
	})
	defer study.Close()

	ew := study.SelectEWhoring()
	// The earnings path needs the whitelist but not the classifier.
	if _, err := study.TrainAndExtract(ew); err != nil {
		log.Fatal(err)
	}
	res := study.AnalyzeEarnings(context.Background(), ew)

	s := res.Summary
	fmt.Println("=== §5 Financial profits ===")
	fmt.Printf("earnings threads: %d; image links: %d; downloaded: %d\n",
		res.ThreadsMatched, res.URLs, res.Downloaded)
	fmt.Printf("filtered as indecent: %d; not proofs: %d; proofs: %d\n",
		res.FilteredNSFV, res.NotProofs, s.Proofs)
	fmt.Printf("total reported: $%.0f by %d actors (mean $%.0f)\n",
		s.TotalUSD, s.Actors, s.MeanPerActorUSD)
	fmt.Printf("mean transaction: $%.2f (paper: $41.90)\n", s.MeanTransactionUSD)
	fmt.Printf("platforms: AGC=%d PayPal=%d BTC=%d Skrill=%d\n",
		s.ByPlatform[earnings.PlatformAGC], s.ByPlatform[earnings.PlatformPayPal],
		s.ByPlatform[earnings.PlatformBitcoin], s.ByPlatform[earnings.PlatformSkrill])

	fmt.Println("\nper-actor earnings CDF (Figure 2):")
	for _, p := range stats.NewECDF(res.PerActorUSD).Series(8) {
		fmt.Printf("  <= $%-9.0f %5.1f%% of actors\n", p.X, p.Pct)
	}

	fmt.Println("\nplatform shift by year (Figure 3):")
	agcByYear := map[int]int{}
	ppByYear := map[int]int{}
	if first, last, ok := res.MonthlyAGC.Span(); ok {
		for _, mc := range res.MonthlyAGC.Dense(first, last) {
			agcByYear[mc.Month.Year] += mc.Count
		}
		_ = last
	}
	if first, last, ok := res.MonthlyPayPal.Span(); ok {
		for _, mc := range res.MonthlyPayPal.Dense(first, last) {
			ppByYear[mc.Month.Year] += mc.Count
		}
	}
	for y := 2010; y <= 2019; y++ {
		if agcByYear[y]+ppByYear[y] == 0 {
			continue
		}
		fmt.Printf("  %d: AGC=%-4d PayPal=%-4d\n", y, agcByYear[y], ppByYear[y])
	}
}
