// Quickstart: generate a small synthetic world, run the complete
// study, and print the headline numbers next to the paper's.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	// One seed drives everything; rerunning reproduces every number.
	study := core.NewStudy(core.Options{
		Synth: synth.Config{Seed: 1, Scale: 0.03},
	})
	res, err := study.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Measuring eWhoring: quickstart ===")
	fmt.Printf("eWhoring threads selected:  %d\n", len(res.EWhoringThreads))
	fmt.Printf("classifier F1:              %.2f   (paper: 0.92)\n", res.Classifier.Metrics.F1())
	fmt.Printf("TOPs extracted:             %d\n", len(res.Classifier.Extract.TOPs))
	fmt.Printf("images crawled:             %d (%d unique)\n",
		res.CrawlStats.ImagesFetched, res.CrawlStats.UniqueImages)
	fmt.Printf("hashlist matches reported:  %d (all deleted before analysis)\n", res.PhotoDNA.Matches)
	fmt.Printf("NSFV previews:              %d\n", len(res.NSFV.Previews))
	packs := res.Provenance.Packs
	fmt.Printf("reverse-search match rate:  %.0f%% of pack images (paper: 74%%)\n",
		100*float64(packs.Matched)/float64(max(1, packs.Total)))
	fmt.Printf("reported earnings:          $%.0f by %d actors (mean $%.0f; paper mean $774)\n",
		res.Earnings.Summary.TotalUSD, res.Earnings.Summary.Actors,
		res.Earnings.Summary.MeanPerActorUSD)
	fmt.Printf("key actors identified:      %d\n", len(res.Actors.Key.All))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
